"""Runtime application of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is the only mutable piece of the faults
layer: it owns the plan's seeded RNG (separate from the simulator's
strategy RNG, so injecting faults never perturbs Random-strategy
draws), the per-activation retry ledger, and the queue of pending
memory-pressure events.  The simulator consults it through a handful
of hooks, every one guarded by ``injector is not None`` so the
fault-free path stays bit-identical to an engine without this layer.

Virtual-time semantics of each hook:

* ``stall_until`` — a thread about to run inside a stall window is
  parked (idle) until the window ends.
* ``speed_factor`` — multiplies into the dilation factor of every
  work/poll/access charge whose *start* instant falls inside a
  matching slowdown window (sliced execution therefore re-samples the
  factor per slice, whole execution once per activation).
* ``attempt`` — decides whether a dequeued activation's processing
  attempt fails *before* its DBFunc runs (stateful operators must not
  observe failed attempts); returns the retry/abort decision.
* ``charge`` — folds disk latency spikes and the slowdown factor into
  one activation's work charge.
* ``apply_time`` — fires memory-pressure events whose instant has
  passed, shrinking the machine's Allcache budget.

When a metrics registry is attached, every decision also lands on the
``faults_*`` counter families — stamped with the virtual instant, so
the :class:`~repro.obs.monitor.RetryStormMonitor` can read the running
``fault_retries_total`` off the registry mid-run and date the exact
control point a retry storm started.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import FaultError
from repro.faults.plan import ActivationFaults, DiskFault, FaultPlan


@dataclass(frozen=True, slots=True)
class FailureDecision:
    """One failed processing attempt: what it costs and what happens next.

    ``aborts`` is True when the attempt exhausted the controlling
    spec's ``max_retries``; otherwise the activation is re-enqueued at
    ``now + backoff``.
    """

    wasted: float
    backoff: float
    attempt: int
    aborts: bool
    operation: str


def _matches(window, op_name: str, thread_id: int | None) -> bool:
    if window.operation is not None and window.operation != op_name:
        return False
    if window.thread_ids is not None and thread_id not in window.thread_ids:
        return False
    return True


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run.

    Single-use: the retry ledger and memory-event queue are consumed
    by the run.  ``bus`` (optional) receives machine-level
    ``fault.memory`` events; per-operation fault events go to each
    operation's own bus.
    """

    def __init__(self, plan: FaultPlan, bus=None, metrics=None) -> None:
        self.plan = plan
        self.bus = bus
        self.metrics = metrics
        self.rng = random.Random(plan.seed)
        self.perturbs_cpu = bool(plan.slowdowns or plan.stalls)
        # Operators that can fail: explicit targets plus the wildcard.
        self._fail_any = any(
            spec.operation is None and spec.rate > 0
            for spec in plan.activations)
        self._fail_ops = {
            spec.operation for spec in plan.activations
            if spec.operation is not None and spec.rate > 0}
        self._fail_ops.update(
            spec.operation for spec in plan.disk if spec.error_rate > 0)
        self._disk_by_op: dict[str, list[DiskFault]] = {}
        for spec in plan.disk:
            self._disk_by_op.setdefault(spec.operation, []).append(spec)
        # Retry ledger: id(activation) -> (attempts, activation).  The
        # activation object is pinned so its id stays unique while
        # tracked; entries are dropped on success or abort.
        self._attempts: dict[int, tuple[int, object]] = {}
        self._pending_memory = sorted(plan.memory, key=lambda m: m.at)
        # Precomputed hot-path gates: the simulator consults these
        # plain attributes before paying a method call, so an empty
        # plan costs one attribute check per site and nothing more.
        self.has_disk = bool(self._disk_by_op)
        self.adjusts_charges = self.has_disk or self.perturbs_cpu
        self.can_fail = self._fail_any or bool(self._fail_ops)
        #: Instant of the next pending time-triggered fault (plain
        #: attribute, maintained by :meth:`apply_time`).
        self.next_time_at = (self._pending_memory[0].at
                             if self._pending_memory else None)
        # One announcement event per (window/spec, operation) pair so
        # continuous faults don't flood the bus.
        self._announced: set[tuple[int, str]] = set()
        self.injected = 0
        self.retries = 0
        self.aborts = 0
        self.memory_events = 0

    # ------------------------------------------------------------------
    # CPU perturbation

    def stall_until(self, op_name: str, thread_id: int,
                    now: float) -> float | None:
        """End of the latest stall window covering *now*, if any."""
        until = None
        for window in self.plan.stalls:
            if (window.t0 <= now < window.t1
                    and _matches(window, op_name, thread_id)):
                if until is None or window.t1 > until:
                    until = window.t1
        return until

    def speed_factor(self, op_name: str, thread_id: int,
                     now: float) -> float:
        """Product of all matching slowdown factors at *now*."""
        factor = 1.0
        for window in self.plan.slowdowns:
            if (window.t0 <= now < window.t1
                    and _matches(window, op_name, thread_id)):
                factor *= window.factor
        return factor

    # ------------------------------------------------------------------
    # Per-activation charges (disk latency + slowdown)

    def disk_extra(self, operation, activation, now: float) -> float:
        """Extra I/O latency for one triggered activation, if any."""
        specs = self._disk_by_op.get(operation.name)
        if specs is None or not activation.is_control:
            return 0.0
        extra = 0.0
        for spec in specs:
            if spec.extra_latency <= 0 or not spec.t0 <= now < spec.t1:
                continue
            if (spec.instances is not None
                    and activation.instance not in spec.instances):
                continue
            extra += spec.extra_latency
            self._announce(spec, operation, now,
                           kind_data={"extra_latency": spec.extra_latency})
        return extra

    def charge(self, operation, thread_id: int, activation,
               now: float, cost: float) -> float:
        """Adjust one whole-activation work charge for active faults."""
        if self._disk_by_op:
            cost += self.disk_extra(operation, activation, now)
        if self.perturbs_cpu:
            factor = self.speed_factor(operation.name, thread_id, now)
            if factor != 1.0:
                cost *= factor
                self._announce_slowdown(operation, thread_id, now, factor)
        return cost

    # ------------------------------------------------------------------
    # Transient activation failures

    def may_fail(self, op_name: str) -> bool:
        """Fast gate: could any activation of this operator fail?"""
        return self._fail_any or op_name in self._fail_ops

    def attempt(self, operation, activation, now: float):
        """Decide one processing attempt.

        Returns ``None`` when the attempt succeeds (and clears any
        retry history), or a :class:`FailureDecision` when it fails.
        The RNG is only consulted for activations an applicable spec
        targets, so un-targeted operators never advance it.
        """
        spec = self._draw_failure(operation, activation, now)
        key = id(activation)
        if spec is None:
            # A clean attempt after earlier failures: retry succeeded.
            self._attempts.pop(key, None)
            return None
        attempts = self._attempts.get(key, (0, None))[0] + 1
        self.injected += 1
        if self.metrics is not None:
            from repro.obs.metrics import FAULTS_INJECTED
            self.metrics.counter(
                FAULTS_INJECTED, operation=operation.name).inc(now)
        wasted = spec_wasted = getattr(spec, "wasted_cost", None)
        if spec_wasted is None:
            wasted = operation.queues[activation.instance].cost_estimate
        if attempts > spec.max_retries:
            self._attempts.pop(key, None)
            self.aborts += 1
            if self.metrics is not None:
                from repro.obs.metrics import FAULT_ABORTS
                self.metrics.counter(
                    FAULT_ABORTS, operation=operation.name).inc(now)
            return FailureDecision(
                wasted=wasted, backoff=0.0, attempt=attempts,
                aborts=True, operation=operation.name)
        self._attempts[key] = (attempts, activation)
        self.retries += 1
        backoff = min(spec.backoff * (2.0 ** (attempts - 1)),
                      spec.backoff_cap)
        if self.metrics is not None:
            from repro.obs.metrics import FAULT_BACKOFF, FAULT_RETRIES
            self.metrics.counter(
                FAULT_RETRIES, operation=operation.name).inc(now)
            self.metrics.counter(FAULT_BACKOFF).inc(now, backoff)
        return FailureDecision(
            wasted=wasted, backoff=backoff, attempt=attempts,
            aborts=False, operation=operation.name)

    def _draw_failure(self, operation, activation, now: float):
        """The first applicable spec whose seeded draw fires, if any."""
        name = operation.name
        for spec in self.plan.activations:
            if spec.rate <= 0:
                continue
            if spec.operation is not None and spec.operation != name:
                continue
            if self.rng.random() < spec.rate:
                return spec
        for spec in self._disk_by_op.get(name, ()):
            if spec.error_rate <= 0 or not activation.is_control:
                continue
            if not spec.t0 <= now < spec.t1:
                continue
            if (spec.instances is not None
                    and activation.instance not in spec.instances):
                continue
            if self.rng.random() < spec.error_rate:
                return spec
        return None

    # ------------------------------------------------------------------
    # Time-triggered faults (memory pressure)

    def apply_time(self, now: float, machine) -> None:
        """Fire every pending memory-pressure event with ``at <= now``."""
        while self._pending_memory and self._pending_memory[0].at <= now:
            event = self._pending_memory.pop(0)
            self.next_time_at = (self._pending_memory[0].at
                                 if self._pending_memory else None)
            released = machine.shrink_cache_budget(event.factor)
            self.memory_events += 1
            if self.metrics is not None:
                from repro.obs.metrics import FAULT_MEMORY_EVENTS
                self.metrics.counter(FAULT_MEMORY_EVENTS).inc(now)
            if self.bus is not None:
                from repro.obs.bus import FAULT_MEMORY
                self.bus.emit(
                    FAULT_MEMORY, now, data={
                        "factor": event.factor,
                        "scheduled_at": event.at,
                        "capacity_bytes": released,
                    })

    # ------------------------------------------------------------------
    # Bus announcements

    def _announce(self, spec, operation, now: float, kind_data: dict) -> None:
        if operation.bus is None:
            return
        key = (id(spec), operation.name)
        if key in self._announced:
            return
        self._announced.add(key)
        from repro.obs.bus import FAULT_DISK
        operation.bus.emit(FAULT_DISK, now, operation=operation.name,
                           data=kind_data)

    def _announce_slowdown(self, operation, thread_id: int, now: float,
                           factor: float) -> None:
        if operation.bus is None:
            return
        key = (-1 - thread_id, operation.name)
        if key in self._announced:
            return
        self._announced.add(key)
        from repro.obs.bus import FAULT_SLOWDOWN
        operation.bus.emit(FAULT_SLOWDOWN, now, operation=operation.name,
                           thread_id=thread_id, data={"factor": factor})


# ----------------------------------------------------------------------
# Real-file I/O faults (storage/io.py hook)


@contextmanager
def io_faults(plan: FaultPlan):
    """Install the plan's I/O error paths into :mod:`repro.storage.io`.

    While active, any CSV load/save whose path contains one of
    ``plan.io_error_paths`` as a substring raises
    :class:`~repro.errors.FaultError`.  Restores the previous hook on
    exit.
    """
    from repro.storage import io as storage_io

    patterns = plan.io_error_paths

    def hook(mode: str, path) -> None:
        text = str(path)
        for pattern in patterns:
            if pattern in text:
                raise FaultError(
                    f"injected I/O fault: {mode} {text!r} matches "
                    f"{pattern!r}")

    previous = storage_io.set_io_fault_hook(hook if patterns else None)
    try:
        yield
    finally:
        storage_io.set_io_fault_hook(previous)
