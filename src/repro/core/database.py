"""The DBS3 facade: catalog + compiler + scheduler + engine in one API.

This is the library's front door.  A downstream user creates a
:class:`DBS3` instance, registers partitioned relations, and runs SQL
or pre-built Lera-par plans; the adaptive scheduler picks thread
counts and strategies unless overridden.

Example:
    >>> from repro import DBS3, generate_wisconsin
    >>> db = DBS3(processors=72)
    >>> db.create_table(generate_wisconsin("A", 10_000), "unique1", degree=50)
    >>> db.create_table(generate_wisconsin("B", 1_000), "unique1", degree=50)
    >>> result = db.query("SELECT * FROM A JOIN B ON A.unique1 = B.unique1")
    >>> result.cardinality
    1000
"""

from __future__ import annotations

from repro.compiler import compile_query
from repro.compiler.parallelizer import CompiledQuery
from repro.core.results import QueryResult
from repro.engine.executor import ExecutionOptions, Executor, QuerySchedule
from repro.lera.graph import LeraGraph
from repro.lera.operators import JOIN_NESTED_LOOP
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.storage.catalog import Catalog, TableEntry
from repro.storage.fragment import Fragment
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.workload.options import WorkloadOptions
from repro.workload.session import Session


class DBS3:
    """A shared-memory parallel database system instance.

    Args:
        machine: Machine model; defaults to a uniform 72-processor
            shared-memory machine.  Pass :meth:`Machine.ksr1` for the
            Allcache memory model.
        processors: Shortcut to build a default machine with this many
            processors (ignored when *machine* is given).
        disks: Simulated disk count for round-robin placement.
        options: Executor options (placement policy, queue capacity,
            RNG seed).
        skew_threshold: Pmax/P ratio beyond which the scheduler picks
            LPT for triggered operators.
    """

    def __init__(self, machine: Machine | None = None, processors: int = 72,
                 disks: int = 8, options: ExecutionOptions | None = None,
                 skew_threshold: float = 1.5) -> None:
        self.machine = machine or Machine.uniform(processors=processors)
        self.catalog = Catalog(disk_count=disks)
        self.scheduler = AdaptiveScheduler(self.machine,
                                           skew_threshold=skew_threshold)
        self.executor = Executor(self.machine, options)

    # -- data definition ---------------------------------------------------------

    def create_table(self, relation: Relation, partition_key: str,
                     degree: int) -> TableEntry:
        """Register a relation, hash partitioned on *partition_key*.

        The degree of partitioning is independent of both the disk
        count and any later degree of parallelism.
        """
        spec = PartitioningSpec.on(partition_key, degree)
        return self.catalog.register(relation, spec)

    def create_table_from_fragments(self, relation: Relation,
                                    partition_key: str,
                                    fragments: list[Fragment]) -> TableEntry:
        """Register pre-built fragments (skew-controlled databases)."""
        spec = PartitioningSpec.on(partition_key, len(fragments))
        return self.catalog.register_fragments(relation, spec, fragments)

    def create_index(self, table: str, attribute: str,
                     kind: str = "hash") -> None:
        """Build a permanent per-fragment index.

        Equality selections on the indexed attribute then compile to
        index probes instead of fragment scans.
        """
        self.catalog.entry(table).create_index(attribute, kind)

    def drop_table(self, name: str) -> None:
        """Remove a relation from the catalog."""
        self.catalog.drop(name)

    def table(self, name: str) -> TableEntry:
        """Look up a registered relation."""
        return self.catalog.entry(name)

    # -- querying ------------------------------------------------------------------

    def compile(self, sql: str,
                algorithm: str = JOIN_NESTED_LOOP) -> CompiledQuery:
        """Parse + optimize + parallelize without executing."""
        return compile_query(sql, self.catalog, algorithm)

    def session(self, options: WorkloadOptions | None = None) -> Session:
        """Open a multi-query session.

        Queries submitted to the session (each with an optional
        virtual-time arrival offset) execute concurrently in one
        shared simulation: admission control bounds the
        multiprogramming level, the scheduler's proportional-
        complexity split divides the machine's threads across running
        queries, and threads freed by a completing query are
        re-granted to the rest mid-flight.
        """
        return Session(self, options)

    def query(self, sql: str, threads: int | None = None,
              algorithm: str = JOIN_NESTED_LOOP,
              schedule: QuerySchedule | None = None) -> QueryResult:
        """Run one SQL query end to end.

        A thin wrapper over a one-query :meth:`session` — a lone
        query executes bit-identically to the dedicated single-query
        path (golden-trace tested).

        Args:
            sql: The query text (see :mod:`repro.compiler.parser` for
                the supported subset).
            threads: Fix the query's degree of parallelism; ``None``
                lets scheduler step 1 choose from estimated complexity.
            algorithm: Default join algorithm (``nested_loop``,
                ``temp_index`` or ``hash``).
            schedule: Bypass the adaptive scheduler entirely.
        """
        compiled = self.compile(sql, algorithm)
        return self._run(compiled, threads, schedule)

    def execute_plan(self, plan: LeraGraph, output_schema: Schema,
                     threads: int | None = None,
                     schedule: QuerySchedule | None = None,
                     description: str = "custom plan") -> QueryResult:
        """Run a hand-built Lera-par plan through scheduler + engine."""
        compiled = CompiledQuery(plan, output_schema, None, description)
        return self._run(compiled, threads, schedule)

    def _run(self, compiled: CompiledQuery, threads: int | None,
             schedule: QuerySchedule | None) -> QueryResult:
        session = self.session()
        handle = session.submit_compiled(compiled, threads=threads,
                                         schedule=schedule)
        return handle.result()

    # -- introspection ----------------------------------------------------------------

    def tables(self) -> list[str]:
        """Names of all registered relations."""
        return [entry.name for entry in self.catalog]

    def explain(self, sql: str, algorithm: str = JOIN_NESTED_LOOP,
                threads: int | None = None, extended: bool = False) -> str:
        """Plan summary plus the schedule the adaptive scheduler picks.

        With *extended*, appends Figure 1's extended view (one line per
        operator instance).
        """
        from repro.lera.render import render as render_plan
        compiled = self.compile(sql, algorithm)
        schedule = self.scheduler.schedule(compiled.plan, threads)
        lines = [compiled.description]
        for node in compiled.plan.nodes:
            op = schedule.of(node.name)
            lines.append(
                f"  {node.name}: {node.trigger_mode}, x{node.instances} "
                f"instances, {op.threads} threads, strategy={op.strategy}")
        lines.append(render_plan(compiled.plan, extended=extended))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"DBS3(processors={self.machine.processors}, "
                f"tables={self.tables()})")
