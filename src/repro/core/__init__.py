"""Top-level DBS3 system: database facade and query results."""

from repro.core.database import DBS3
from repro.core.results import QueryResult

__all__ = ["DBS3", "QueryResult"]
