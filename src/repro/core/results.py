"""Query results returned by the :class:`~repro.core.database.DBS3` facade."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.metrics import QueryExecution
from repro.storage.schema import Schema
from repro.storage.tuples import Row


@dataclass(frozen=True)
class QueryResult:
    """Rows plus the execution's full metrics.

    Attributes:
        rows: Result rows, shaped by the SELECT list.
        schema: Schema of those rows.
        execution: Engine metrics (virtual response time, per-operation
            profiles, start-up time, ...).
        description: Human-readable plan summary, e.g.
            ``"IdealJoin(A.unique1 = B.unique1, nested_loop)"``.
    """

    rows: list[Row]
    schema: Schema
    execution: QueryExecution
    description: str

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def response_time(self) -> float:
        """Virtual response time in seconds (what the paper plots)."""
        return self.execution.response_time

    def column(self, name: str) -> list:
        """Materialize one result column."""
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def head(self, count: int = 10) -> list[Row]:
        """The first *count* rows (stable order is not guaranteed —
        parallel execution interleaves instance outputs)."""
        return self.rows[:count]

    def __repr__(self) -> str:
        return (f"QueryResult(|rows|={len(self.rows)}, "
                f"response={self.response_time:.3f}s, {self.description})")
