"""Allcache local-cache simulation.

The KSR1's Allcache memory system gives every processor a 32 MB
*local cache*; the union of all local caches is the virtual shared
memory.  Touching data resident in another processor's cache ships the
lines over (about 6x the local access time), after which they are
local — "data may move from one local cache to another; it is this
feature which gives the global shared-memory view" (Section 5.2).

We simulate this at *segment* granularity: a segment is a fragment (or
other contiguous chunk) identified by a key.  Each worker thread owns a
:class:`LocalCache`; a shared :class:`AllcacheDirectory` records which
cache currently holds each segment.  Touching a segment that lives
elsewhere charges the remote penalty for its lines and migrates it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.costs import CostModel

#: Directory location meaning "in main memory / an unspecified remote cache".
REMOTE_HOME = -1


@dataclass
class CacheStats:
    """Counters for one local cache."""

    local_hits: int = 0
    remote_misses: int = 0
    capacity_evictions: int = 0
    lines_shipped: int = 0


class LocalCache:
    """One processor's local cache, with LRU eviction at segment level."""

    def __init__(self, owner: int, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise MachineError("capacity_bytes must be >= 0")
        self.owner = owner
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._segments: "OrderedDict[object, int]" = OrderedDict()
        self.stats = CacheStats()

    def __contains__(self, key: object) -> bool:
        return key in self._segments

    def touch(self, key: object, size_bytes: int) -> list[object]:
        """Mark *key* resident and most-recently used.

        Returns the keys evicted to make room (LRU order).  A segment
        larger than the whole cache is admitted alone and evicted on
        the next touch — it can never be cache-resident together with
        anything else, matching the paper's remark that each bucket
        must be small relative to a local cache to benefit.
        """
        evicted: list[object] = []
        if key in self._segments:
            self._segments.move_to_end(key)
            return evicted
        self._segments[key] = size_bytes
        self.used_bytes += size_bytes
        while self.used_bytes > self.capacity_bytes and len(self._segments) > 1:
            old_key, old_size = self._segments.popitem(last=False)
            if old_key == key:
                # Shouldn't happen (len > 1 guards it) but keep LRU sane.
                self._segments[old_key] = old_size
                break
            self.used_bytes -= old_size
            self.stats.capacity_evictions += 1
            evicted.append(old_key)
        return evicted

    def drop(self, key: object) -> None:
        """Remove a segment (it migrated to another cache)."""
        size = self._segments.pop(key, None)
        if size is not None:
            self.used_bytes -= size

    def resize(self, capacity_bytes: int) -> list[object]:
        """Change the capacity, evicting LRU segments that no longer fit.

        Returns the evicted keys; like :meth:`touch`, a lone oversized
        segment is tolerated until something else arrives.
        """
        if capacity_bytes < 0:
            raise MachineError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        evicted: list[object] = []
        while self.used_bytes > self.capacity_bytes and len(self._segments) > 1:
            key, size = self._segments.popitem(last=False)
            self.used_bytes -= size
            self.stats.capacity_evictions += 1
            evicted.append(key)
        return evicted


@dataclass
class AllcacheDirectory:
    """Which local cache holds each segment, plus the machine-wide model.

    ``access`` is the single entry point used by the engine: it returns
    the extra virtual-time cost of one thread touching one segment and
    updates residency.
    """

    costs: CostModel
    capacity_bytes: int
    caches: dict[int, LocalCache] = field(default_factory=dict)
    home: dict[object, int] = field(default_factory=dict)
    segment_sizes: dict[object, int] = field(default_factory=dict)

    def cache_of(self, owner: int) -> LocalCache:
        """The local cache of processor/thread *owner* (created lazily)."""
        cache = self.caches.get(owner)
        if cache is None:
            cache = LocalCache(owner, self.capacity_bytes)
            self.caches[owner] = cache
        return cache

    def place(self, key: object, size_bytes: int, owner: int = REMOTE_HOME) -> None:
        """Declare a segment's initial location (load-time placement).

        ``owner = REMOTE_HOME`` means the segment starts outside every
        worker's local cache, so the first touch pays the remote
        penalty — the "remote execution" of Figure 8.
        """
        self.segment_sizes[key] = size_bytes
        self.home[key] = owner
        if owner != REMOTE_HOME:
            self.cache_of(owner).touch(key, size_bytes)

    def access(self, owner: int, key: object, size_bytes: int | None = None) -> float:
        """Charge one touch of *key* by *owner*; migrate if remote.

        Returns the **extra** virtual time beyond the baseline local
        access already folded into per-tuple costs: zero for a local
        hit, ``lines * (remote - local)`` for a remote miss.
        """
        size = self.segment_sizes.get(key, size_bytes)
        if size is None:
            raise MachineError(f"segment {key!r} accessed before being placed")
        self.segment_sizes[key] = size
        cache = self.cache_of(owner)
        if key in cache:
            cache.touch(key, size)
            cache.stats.local_hits += 1
            return 0.0
        # Remote miss: ship the lines, migrate residency.
        previous = self.home.get(key, REMOTE_HOME)
        if previous != REMOTE_HOME and previous != owner:
            self.cache_of(previous).drop(key)
        self.home[key] = owner
        evicted = cache.touch(key, size)
        for gone in evicted:
            # Evicted segments fall back to "remote" (main memory).
            if self.home.get(gone) == owner:
                self.home[gone] = REMOTE_HOME
        lines = self.costs.lines(size)
        cache.stats.remote_misses += 1
        cache.stats.lines_shipped += lines
        return lines * self.costs.remote_penalty_per_line()

    def shrink_to(self, capacity_bytes: int) -> None:
        """Shrink every local cache (existing and future) to a new budget.

        Mid-run memory pressure: evicted segments fall back to main
        memory, so the next touch pays the remote penalty again.
        """
        self.capacity_bytes = capacity_bytes
        for cache in self.caches.values():
            for gone in cache.resize(capacity_bytes):
                if self.home.get(gone) == cache.owner:
                    self.home[gone] = REMOTE_HOME

    def total_stats(self) -> CacheStats:
        """Aggregate counters across all local caches."""
        total = CacheStats()
        for cache in self.caches.values():
            total.local_hits += cache.stats.local_hits
            total.remote_misses += cache.stats.remote_misses
            total.capacity_evictions += cache.stats.capacity_evictions
            total.lines_shipped += cache.stats.lines_shipped
        return total
