"""Machine models: the KSR1 Allcache machine and a uniform one.

A :class:`Machine` bundles the processor count, the cost model, and —
for the Allcache flavour — a memory directory.  Figure 7 of the paper
contrasts exactly these two organizations: a conventional
shared-memory machine (Encore Multimax) against the KSR1's physically
distributed, virtually shared Allcache memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.cache import AllcacheDirectory
from repro.machine.costs import DEFAULT_COSTS, CostModel

#: The paper's experimental platform: 72 x 40 MIPS processors, 32 MB
#: local caches, 2.3 GB total memory.
KSR1_PROCESSORS = 72
KSR1_LOCAL_CACHE_BYTES = 32 * 1024 * 1024

#: Fraction of a local cache usable for relation data; the rest holds
#: code, the OS, and engine structures.  Calibrated so that, as in the
#: paper's Figure 8 experiment, a 200K-tuple Wisconsin relation
#: (~208-byte records, ~43 MB) cannot be cached fully locally under 5
#: threads: 43 MB / 5 ~= 8.6 MB just fits, 43 MB / 4 does not.
DATA_CACHE_FRACTION = 0.28


@dataclass
class Machine:
    """A shared-memory multiprocessor model.

    Attributes:
        processors: Number of processors available to the query.
        costs: Virtual-time cost model.
        models_memory: When True, an Allcache directory tracks segment
            residency and charges remote penalties; when False, memory
            is uniform (Encore-style) and no extra memory cost applies.
        data_cache_bytes: Per-processor local-cache capacity usable for
            relation data (only meaningful with ``models_memory``).
    """

    processors: int = KSR1_PROCESSORS
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    models_memory: bool = False
    data_cache_bytes: int = int(KSR1_LOCAL_CACHE_BYTES * DATA_CACHE_FRACTION)
    directory: AllcacheDirectory | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise MachineError(f"processors must be >= 1, got {self.processors}")
        if self.models_memory:
            self.directory = AllcacheDirectory(self.costs, self.data_cache_bytes)

    # -- constructors --------------------------------------------------------

    @classmethod
    def ksr1(cls, processors: int = KSR1_PROCESSORS,
             costs: CostModel | None = None,
             models_memory: bool = True) -> "Machine":
        """The paper's KSR1 with Allcache memory modelling on."""
        return cls(processors=processors, costs=costs or DEFAULT_COSTS,
                   models_memory=models_memory)

    @classmethod
    def uniform(cls, processors: int = KSR1_PROCESSORS,
                costs: CostModel | None = None) -> "Machine":
        """A conventional uniform shared-memory machine (Encore-style)."""
        return cls(processors=processors, costs=costs or DEFAULT_COSTS,
                   models_memory=False)

    # -- timing --------------------------------------------------------------

    def dilation(self, allocated_threads: int) -> float:
        """Slow-down factor when more threads than processors run.

        With ``n <= p`` threads the factor is 1.  Beyond, processors
        are time-shared — each thread runs at ``p/n`` speed — and a
        small context-switch tax applies, which is why the paper's
        speed-up curves dip slightly past 70 threads.
        """
        if allocated_threads <= self.processors:
            return 1.0
        ratio = allocated_threads / self.processors
        return ratio * (1.0 + self.costs.context_switch_tax * (ratio - 1.0))

    def memory_access(self, owner: int, segment_key: object,
                      size_bytes: int | None = None) -> float:
        """Extra cost of touching a data segment (0 on uniform machines)."""
        if self.directory is None:
            return 0.0
        return self.directory.access(owner, segment_key, size_bytes)

    def place_segment(self, segment_key: object, size_bytes: int,
                      owner: int = -1) -> None:
        """Declare a segment's initial cache residency (no-op if uniform)."""
        if self.directory is not None:
            self.directory.place(segment_key, size_bytes, owner)

    def shrink_cache_budget(self, factor: float) -> int:
        """Shrink the Allcache data budget to ``factor`` of its size.

        Models mid-run memory pressure (another workload claiming local
        cache): the directory capacity and every existing local cache
        shrink; over-full caches evict LRU segments on their next
        touch.  Returns the new per-cache budget (unchanged on uniform
        machines, where memory is not modelled).
        """
        if not 0.0 < factor < 1.0:
            raise MachineError(
                f"cache shrink factor must be in (0, 1), got {factor}")
        self.data_cache_bytes = int(self.data_cache_bytes * factor)
        if self.directory is not None:
            self.directory.shrink_to(self.data_cache_bytes)
        return self.data_cache_bytes
