"""Machine models: cost model, local caches, KSR1 Allcache directory."""

from repro.machine.cache import (
    REMOTE_HOME,
    AllcacheDirectory,
    CacheStats,
    LocalCache,
)
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.machine.machine import (
    DATA_CACHE_FRACTION,
    KSR1_LOCAL_CACHE_BYTES,
    KSR1_PROCESSORS,
    Machine,
)

__all__ = [
    "AllcacheDirectory",
    "CacheStats",
    "CostModel",
    "DATA_CACHE_FRACTION",
    "DEFAULT_COSTS",
    "KSR1_LOCAL_CACHE_BYTES",
    "KSR1_PROCESSORS",
    "LocalCache",
    "Machine",
    "REMOTE_HOME",
]
