"""The calibrated cost model.

Every quantity the virtual-time engine charges is defined here, in
*seconds of virtual time*.  The defaults are calibrated against the
paper's headline measurements on the 72-node KSR1 (40 MIPS
processors), so that absolute numbers land in the paper's ballpark:

* sequential IdealJoin, 200K x 20K tuples, nested loop, 200 fragments:
  ~956 s  (Figure 15's Tseq)  ->  ``tuple_pair`` ~= 48 us;
* sequential AssocJoin on the same database: ~1048 s (Figure 14's
  Tseq)  ->  per-tuple transmit + pipelined activation handling
  ~= 4.4 ms;
* partitioning overhead slopes (Figure 16): ~0.45 ms/degree for
  IdealJoin (one triggered queue per fragment) and ~4 ms/degree for
  AssocJoin (a triggered transmit queue plus a pipelined join queue
  per fragment)  ->  queue creation costs 0.45 ms / 3.5 ms;
* 200K-tuple selection, 5..30 threads, total ~28 s (Figure 8)  ->
  ``filter_tuple`` ~= 140 us.

We reproduce shapes, not the authors' exact milliseconds; see
DESIGN.md section "Cost-model calibration".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import MachineError


@dataclass(frozen=True)
class CostModel:
    """All virtual-time cost constants, in seconds.

    Attributes are grouped by the subsystem that charges them.
    """

    # -- relational work ----------------------------------------------------
    tuple_pair: float = 48e-6
    """Nested-loop join: compare one (outer, inner) tuple pair."""
    index_compare: float = 15e-6
    """One key comparison during temp-index build (sort) or probe."""
    result_tuple: float = 20e-6
    """Materialize one join result tuple."""
    filter_tuple: float = 140e-6
    """Evaluate the selection predicate on one tuple."""
    transmit_tuple: float = 2.0e-3
    """Producer-side cost to hash-route and send one tuple."""
    pipelined_activation: float = 2.4e-3
    """Consumer-side cost to receive and dispatch one tuple activation."""
    store_tuple: float = 10e-6
    """Append one tuple to a result fragment."""
    aggregate_tuple: float = 12e-6
    """Update one group's accumulators with one tuple."""

    # -- activation queue machinery ------------------------------------------
    queue_create_triggered: float = 0.45e-3
    """Create one triggered queue (start-up, sequential)."""
    queue_create_pipelined: float = 3.5e-3
    """Create one pipelined queue: buffer + NotFull/NotEmpty conditions
    (start-up, sequential)."""
    enqueue: float = 2e-6
    """Push one activation under the queue mutex."""
    dequeue_batch: float = 5e-6
    """Pop a batch of activations under the queue mutex."""
    poll_empty: float = 1e-6
    """Inspect one empty queue while hunting for work."""
    secondary_access: float = 15e-6
    """Extra mutex-contention cost when consuming from a queue that is
    another thread's main queue."""
    trigger_activation: float = 50e-6
    """Handle one control (trigger) activation."""

    # -- threads and processors ------------------------------------------------
    thread_create: float = 5e-3
    """Spawn one worker thread (start-up, sequential)."""
    context_switch_tax: float = 0.05
    """Relative slow-down per unit of processor over-subscription."""

    # -- memory hierarchy (KSR1 Allcache) --------------------------------------
    line_bytes: int = 128
    """KSR1 subpage (cache line) size."""
    local_line: float = 0.77e-6
    """Touch one line resident in the local cache."""
    remote_line: float = 4.6e-6
    """Ship one line from a remote cache (about 6x local access)."""

    def __post_init__(self) -> None:
        for name in ("tuple_pair", "index_compare", "result_tuple",
                     "filter_tuple", "transmit_tuple", "pipelined_activation",
                     "store_tuple", "aggregate_tuple", "queue_create_triggered",
                     "queue_create_pipelined", "enqueue", "dequeue_batch",
                     "poll_empty", "secondary_access", "trigger_activation",
                     "thread_create", "local_line", "remote_line"):
            if getattr(self, name) < 0:
                raise MachineError(f"cost constant {name} must be >= 0")
        if self.line_bytes < 1:
            raise MachineError("line_bytes must be >= 1")

    # -- derived costs -----------------------------------------------------

    def remote_penalty_per_line(self) -> float:
        """Extra seconds per line for a remote rather than local touch."""
        return self.remote_line - self.local_line

    def lines(self, size_bytes: int) -> int:
        """Number of cache lines spanned by *size_bytes*."""
        return max(1, math.ceil(size_bytes / self.line_bytes))

    def nested_loop_cost(self, outer: int, inner: int, matches: int) -> float:
        """Nested-loop join of an outer x inner fragment pair."""
        return outer * inner * self.tuple_pair + matches * self.result_tuple

    def index_build_cost(self, cardinality: int) -> float:
        """Build a temp sorted index over *cardinality* rows (n log n)."""
        if cardinality <= 1:
            return cardinality * self.index_compare
        return cardinality * math.log2(cardinality) * self.index_compare

    def index_probe_cost(self, index_cardinality: int, matches: int) -> float:
        """Binary-search one key in a temp index and emit matches."""
        comparisons = math.log2(index_cardinality) if index_cardinality > 1 else 1.0
        return comparisons * self.index_compare + matches * self.result_tuple

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every *work* cost multiplied by *factor*.

        Useful for modelling faster/slower processors while keeping the
        same relative shape (queue and memory costs scale too).
        """
        if factor <= 0:
            raise MachineError(f"scale factor must be > 0, got {factor}")
        fields = {name: getattr(self, name) * factor
                  for name in ("tuple_pair", "index_compare", "result_tuple",
                               "filter_tuple", "transmit_tuple",
                               "pipelined_activation", "store_tuple",
                               "aggregate_tuple",
                               "queue_create_triggered", "queue_create_pipelined",
                               "enqueue", "dequeue_batch", "poll_empty",
                               "secondary_access", "trigger_activation",
                               "thread_create", "local_line", "remote_line")}
        return replace(self, **fields)


#: The default calibration, shared by experiments unless overridden.
DEFAULT_COSTS = CostModel()
