"""Exception hierarchy for the DBS3 reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the more
specific subclasses below; nothing in the library raises bare
``ValueError``/``KeyError`` for domain-level failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference cannot be resolved."""


class PartitioningError(ReproError):
    """Invalid partitioning specification or incompatible fragmentation."""


class CatalogError(ReproError):
    """A catalog lookup failed or a registration conflicts."""


class PlanError(ReproError):
    """A Lera-par plan is structurally invalid."""


class ExecutionError(ReproError):
    """The parallel execution engine hit an unrecoverable condition."""


class SchedulerError(ReproError):
    """The adaptive scheduler was given an unsatisfiable configuration."""


class CompilationError(ReproError):
    """A query could not be parsed, optimized, or parallelized."""


class MachineError(ReproError):
    """Invalid machine model configuration."""


class WorkloadError(ReproError):
    """A multi-query workload is misconfigured or cannot make progress."""


class AdmissionError(WorkloadError):
    """The admission controller can never admit a submitted query."""


class QueryRejectedError(AdmissionError):
    """The result of a rejected query was requested.

    Under a serving policy an inadmissible query does not poison the
    batch: it reaches the terminal status ``rejected`` and asking for
    its result raises this (inspect ``handle.execution`` instead).
    """


class QueryShedError(QueryRejectedError):
    """The result of a load-shed query was requested.

    Overload protection dropped the query before it ran (bounded wait
    queue, deadline infeasibility, or priority shedding); its terminal
    status is ``shed``.
    """


class FaultError(ReproError):
    """An injected fault fired (or a fault plan is malformed)."""


class ExecutionFaultError(FaultError):
    """An activation exhausted its retries; the query aborted."""


class QueryCancelledError(WorkloadError):
    """The result of a cancelled query was requested."""


class QueryTimeoutError(QueryCancelledError):
    """A query exceeded its submission timeout and was cancelled."""
