"""Wall-clock self-profiler for the simulator's own hot paths.

Everything else in the observability stack measures the *simulated*
system in virtual time; this package measures the *simulator* in wall
time.  The engine's inner loops (ready-index scan, ``_deliver``, the
wave barrier, admission, the fold pass, fault injection) carry
``enter``/``exit`` instrumentation guarded by the usual
``is not None`` no-op check, and the :class:`EngineProfiler`
aggregates the timings into a call tree keyed by section *path* — so
"deliver under sim under run" and "deliver under a regrant callback"
stay distinct, exactly what a flame graph wants.

Attribution is double-count-free by construction: each node tracks
*self* time (elapsed minus time spent in child sections), so the sum
of every node's ``self_ns`` never exceeds the profiled wall window.
The CI ``profile-smoke`` gate holds that sum to at least 90 % of
measured wall time at MPL 4 — if the engine grows a hot path outside
any section, the gate catches the blind spot.

Output formats:

* :meth:`EngineProfiler.folded` — classic folded-stack lines
  (``run;sim;deliver 1234567``) directly renderable by any flame-graph
  tool;
* :meth:`EngineProfiler.render` — a self-time-sorted table for the
  CLI;
* :meth:`EngineProfiler.to_json` / :meth:`from_json` — the schema-4
  JSONL record, replayable by ``--diagnose --from-events``.

The module-level :func:`profile` context manager installs a profiler
as the process-wide active one (:func:`active_profiler`), which the
executor layers pick up at run start — so profiling a run is::

    with profile() as prof:
        session.run()
    print(prof.render())
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.errors import ReproError


class EngineProfiler:
    """Aggregating enter/exit wall-clock profiler.

    Sections nest: ``enter("sim")``, then ``enter("deliver")`` inside
    it, attributes the inner elapsed to path ``("sim", "deliver")``
    and *subtracts* it from the parent's self time.  The per-call cost
    is two ``perf_counter_ns`` reads and a dict update — cheap enough
    to leave compiled in behind the ``is not None`` guard.
    """

    __slots__ = ("nodes", "_stack", "_started_ns", "_stopped_ns")

    def __init__(self) -> None:
        #: path tuple -> [calls, self_ns, total_ns]
        self.nodes: dict[tuple[str, ...], list[int]] = {}
        #: open frames: [name, entered_ns, child_ns]
        self._stack: list[list] = []
        self._started_ns: int | None = None
        self._stopped_ns: int | None = None

    def __repr__(self) -> str:
        return (f"EngineProfiler(sections={len(self.nodes)}, "
                f"wall_ms={self.wall_ns / 1e6:.1f})")

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Open the wall window (idempotent — the first start wins, so
        an outer ``profile()`` block and an engine both calling it
        measure the outermost window)."""
        if self._started_ns is None:
            self._started_ns = time.perf_counter_ns()

    def stop(self) -> None:
        """Close the wall window (last stop wins)."""
        self._stopped_ns = time.perf_counter_ns()

    @property
    def wall_ns(self) -> int:
        """Profiled wall window in nanoseconds (0 before start)."""
        if self._started_ns is None:
            return 0
        end = (self._stopped_ns if self._stopped_ns is not None
               else time.perf_counter_ns())
        return max(end - self._started_ns, 0)

    # -- instrumentation ----------------------------------------------

    def enter(self, name: str) -> None:
        """Open section *name* (nested under any open section)."""
        self._stack.append([name, time.perf_counter_ns(), 0])

    def exit(self) -> None:
        """Close the innermost open section."""
        name, entered, child_ns = self._stack.pop()
        elapsed = time.perf_counter_ns() - entered
        path = tuple(frame[0] for frame in self._stack) + (name,)
        node = self.nodes.get(path)
        if node is None:
            node = self.nodes[path] = [0, 0, 0]
        node[0] += 1
        node[1] += elapsed - child_ns
        node[2] += elapsed
        if self._stack:
            self._stack[-1][2] += elapsed

    @contextmanager
    def section(self, name: str):
        """``with prof.section("admission"): ...``"""
        self.enter(name)
        try:
            yield
        finally:
            self.exit()

    # -- attribution --------------------------------------------------

    def attributed_ns(self) -> int:
        """Total self time across every section — double-count-free,
        so directly comparable against :attr:`wall_ns`."""
        return sum(node[1] for node in self.nodes.values())

    def coverage(self) -> float:
        """Fraction of the wall window attributed to sections."""
        wall = self.wall_ns
        if wall <= 0:
            return 0.0
        return self.attributed_ns() / wall

    # -- output -------------------------------------------------------

    def folded(self) -> str:
        """Folded-stack lines (``a;b;c self_ns``), flame-graph ready."""
        lines = []
        for path in sorted(self.nodes):
            self_ns = self.nodes[path][1]
            if self_ns > 0:
                lines.append(f"{';'.join(path)} {self_ns}")
        return "\n".join(lines)

    def render(self) -> str:
        """Self-time-sorted attribution table for the CLI."""
        wall = self.wall_ns
        if not self.nodes:
            return "profiler: no sections recorded"
        header = (f"{'section':<32} {'calls':>9} {'self_ms':>10} "
                  f"{'total_ms':>10} {'self%':>7}")
        lines = [header, "-" * len(header)]
        ordered = sorted(self.nodes.items(),
                         key=lambda item: item[1][1], reverse=True)
        for path, (calls, self_ns, total_ns) in ordered:
            share = self_ns / wall if wall > 0 else 0.0
            name = ";".join(path)
            if len(name) > 32:
                name = "…" + name[-31:]
            lines.append(f"{name:<32} {calls:>9} {self_ns / 1e6:>10.2f} "
                         f"{total_ns / 1e6:>10.2f} {share:>6.1%}")
        lines.append(f"{'attributed':<32} {'':>9} "
                     f"{self.attributed_ns() / 1e6:>10.2f} "
                     f"{wall / 1e6:>10.2f} {self.coverage():>6.1%}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Plain-dict form (the schema-4 JSONL profile record)."""
        return {
            "wall_ns": self.wall_ns,
            "nodes": [[list(path), calls, self_ns, total_ns]
                      for path, (calls, self_ns, total_ns)
                      in sorted(self.nodes.items())],
        }

    @classmethod
    def from_json(cls, data: dict) -> "EngineProfiler":
        prof = cls()
        prof._started_ns = 0
        prof._stopped_ns = int(data.get("wall_ns", 0))
        for path, calls, self_ns, total_ns in data.get("nodes", ()):
            prof.nodes[tuple(path)] = [calls, self_ns, total_ns]
        return prof


#: The process-wide active profiler (installed by :func:`profile`).
_ACTIVE: EngineProfiler | None = None


def active_profiler() -> EngineProfiler | None:
    """The profiler installed by an enclosing :func:`profile` block,
    or ``None`` — what the executor layers pick up at run start."""
    return _ACTIVE


@contextmanager
def profile():
    """Install a fresh :class:`EngineProfiler` as the active one for
    the duration of the block and yield it (started/stopped around
    the block, so ``coverage()`` is relative to the block's wall)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ReproError("profile() blocks do not nest")
    prof = EngineProfiler()
    _ACTIVE = prof
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
        _ACTIVE = None
