"""Engine self-profiling: wall-clock attribution of simulator phases.

See :mod:`repro.prof.profiler` for the model.  Public surface::

    from repro.prof import EngineProfiler, active_profiler, profile
"""

from repro.prof.profiler import (
    EngineProfiler,
    active_profiler,
    profile,
)

__all__ = [
    "EngineProfiler",
    "active_profiler",
    "profile",
]
