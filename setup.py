"""Legacy setup shim: enables editable installs on environments whose
setuptools lacks PEP 660 support (no `wheel` package available)."""
from setuptools import setup

setup()
