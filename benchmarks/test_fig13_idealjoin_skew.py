"""Figure 13: IdealJoin vs skew — Random degrades, LPT resists to ~0.8."""

from conftest import FULL, run_once

from repro.bench import fig13_idealjoin_skew


def test_fig13_idealjoin_skew(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig13_idealjoin_skew.run)
    else:
        result = run_once(benchmark, lambda: fig13_idealjoin_skew.run(
            card_a=50_000, card_b=5_000))
    record_result(result)

    thetas = result.x_values
    random_series = result.get("Random")
    lpt = result.get("LPT")
    ideal = result.get("Tideal")
    worst = result.get("Tworst")
    pmax = result.get("Pmax")
    index_of = {theta: i for i, theta in enumerate(thetas)}

    # Low skew (< 0.4): both strategies near-ideal, as in the paper.
    for theta in (0.0, 0.1, 0.2, 0.3):
        i = index_of[theta]
        assert random_series.values[i] <= ideal.values[i] * 1.15
        assert lpt.values[i] <= ideal.values[i] * 1.15

    # High skew: LPT beats Random and stays near-ideal up to ~0.8.
    for theta in (0.8, 0.9, 1.0):
        i = index_of[theta]
        assert lpt.values[i] <= random_series.values[i] * 1.02
    i08 = index_of[0.8]
    assert lpt.values[i08] <= max(ideal.values[i08], pmax.values[i08]) * 1.10

    # Inflection past 0.8: the longest activation alone exceeds the
    # ideal time and pins even LPT's response.
    i10 = index_of[1.0]
    assert pmax.values[i10] > ideal.values[i10]
    assert lpt.values[i10] >= pmax.values[i10]

    # Random stays under the analytic worst bound.
    for i in range(len(thetas)):
        assert random_series.values[i] <= worst.values[i] * 1.05
