"""Figures 8 & 9: Allcache remote-access penalty on a parallel selection.

Paper shapes asserted:
* Tr > Tl at every thread count (remote data costs extra);
* the penalty Tr - Tl is a small fraction of the total (~4%);
* the penalty *decreases* as threads share the line shipping.
"""

from conftest import FULL, run_once

from repro.bench import fig08_remote_access


def test_fig08_09_remote_access(benchmark, record_result):
    cardinality = 200_000 if FULL else 50_000
    result = run_once(benchmark,
                      lambda: fig08_remote_access.run(cardinality=cardinality))
    record_result(result)

    local = result.get("Tl (local)")
    remote = result.get("Tr (remote)")
    delta = result.get("Tr - Tl")

    assert all(r > l for r, l in zip(remote.values, local.values)), \
        "remote execution must be slower at every thread count"
    fraction = result.notes["delta_fraction_mean"]
    assert 0.0 < fraction < 0.10, \
        f"Tr - Tl should be a small fraction of total (paper ~4%), got {fraction:.3f}"
    assert delta.values[0] > delta.values[-1], \
        "the remote penalty must shrink as threads parallelize line shipping"
    # monotone non-increasing within a small tolerance
    for earlier, later in zip(delta.values, delta.values[1:]):
        assert later <= earlier * 1.10


def test_fig08_small_thread_counts_cache_overflow(benchmark, record_result):
    """Section 5.2: under ~5 threads the per-thread share exceeds the
    local cache, so even 'local' runs ship lines (Tr/Tl -> 1)."""
    result = run_once(benchmark, fig08_remote_access.run_small_thread_counts)
    result.experiment_id = "fig08_small_threads"
    record_result(result)
    local = result.get("Tl (local)")
    remote = result.get("Tr (remote)")
    ratios = [r / l for r, l in zip(remote.values, local.values)]
    # the advantage of local placement is smaller at 2 threads than at 8
    assert ratios[0] < ratios[-1] * 1.02
