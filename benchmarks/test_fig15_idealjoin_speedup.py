"""Figure 15: IdealJoin speed-up ceilings — nmax ~= 6 / 19 / 40."""

from conftest import FULL, run_once

from repro.bench import fig15_idealjoin_speedup


def test_fig15_idealjoin_speedup(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig15_idealjoin_speedup.run)
    else:
        result = run_once(benchmark, lambda: fig15_idealjoin_speedup.run(
            card_a=100_000, card_b=10_000,
            thread_counts=(10, 30, 50, 70, 100)))
    record_result(result)

    threads = result.x_values
    at = {t: i for i, t in enumerate(threads)}
    unskewed = result.get("unskewed")

    # Unskewed: near-linear to 70 threads (slack at reduced size).
    assert unskewed.values[at[70]] > (55 if FULL else 50)

    # Skewed: the speed-up plateaus at the paper's nmax values.
    paper_nmax = fig15_idealjoin_speedup.PAPER_NMAX
    for theta, expected in paper_nmax.items():
        series = result.get(f"zipf={theta:g}")
        ceiling = series.ceiling()
        assert abs(ceiling - expected) / expected < 0.20, \
            f"zipf={theta}: ceiling {ceiling:.1f} vs paper nmax {expected}"
        # and the measured per-activation profile agrees with theory
        profile_nmax = result.notes["profile_nmax"][f"zipf={theta:g}"]
        assert abs(profile_nmax - expected) / expected < 0.15

    # The ceiling ordering follows the skew ordering.
    assert (result.get("zipf=1").peak
            < result.get("zipf=0.6").peak
            < result.get("zipf=0.4").peak
            <= unskewed.peak)

    # Past nmax, adding threads does not help the skewed runs.
    skewed = result.get("zipf=1")
    assert skewed.values[at[70]] <= skewed.values[at[30]] * 1.10
