"""Figure 17: temp-index joins vs degree — gains then overhead.

Known divergence (documented in EXPERIMENTS.md): the paper's curves
reach their minima around d~1000 (AssocJoin) and d~1400 (IdealJoin);
with our calibration AssocJoin's per-degree overhead overtakes its
log-factor gain earlier, so its minimum sits at the low end of the
sweep.  The orderings the paper argues from — AssocJoin above
IdealJoin everywhere, AssocJoin's rise starting earlier — hold.
"""

from conftest import FULL, run_once

from repro.bench import fig17_partitioning_index


def test_fig17_partitioning_index(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig17_partitioning_index.run)
    else:
        result = run_once(benchmark, lambda: fig17_partitioning_index.run(
            card_a=200_000, card_b=20_000,
            degrees=(40, 250, 500, 1000, 1500)))
    record_result(result)

    ideal = result.get("IdealJoin")
    assoc = result.get("AssocJoin")

    # AssocJoin sits above IdealJoin throughout (transmit cost).
    for a, i in zip(assoc.values, ideal.values):
        assert a > i

    # IdealJoin gains from a higher degree: its minimum is well below
    # its low-degree time, and sits at a high degree.
    assert ideal.minimum < ideal.values[0] * 0.9
    assert result.notes["ideal_min_degree"] >= 500

    # AssocJoin's overhead dominates earlier than IdealJoin's: its
    # minimum lies at a strictly lower degree.
    assert result.notes["assoc_min_degree"] < result.notes["ideal_min_degree"]

    # Both curves rise at the far end of the sweep (overhead dominates).
    assert assoc.values[-1] > assoc.minimum
