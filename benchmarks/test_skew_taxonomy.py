"""The Walton skew taxonomy (Figure 6), as executable signatures.

Each workload of :mod:`repro.bench.skew_taxonomy` exhibits exactly one
skew class; this bench runs the paper's filter-join pipeline over all
four and asserts each skew's measurable fingerprint:

* AVS/TPS — per-activation *cost* skew on the join (stored fragments
  of uneven size);
* SS — per-filter-instance *output* skew (selectivity varies);
* RS — per-join-queue *placement* skew (redistribution floods a few
  instances);
* JPS — per-activation *output* skew on the join (hot keys multiply
  matches).
"""

from conftest import run_once

from repro.bench.skew_taxonomy import (
    make_avs_workload,
    make_jps_workload,
    make_rs_workload,
    make_ss_workload,
)
from repro.engine.executor import Executor, QuerySchedule
from repro.machine.machine import Machine

MACHINE = Machine.uniform(processors=16)


def _run(workload, threads=6):
    executor = Executor(MACHINE)
    return executor.execute(workload.plan,
                            QuerySchedule.for_plan(workload.plan, threads))


def _cost_skew(metrics):
    costs = metrics.activation_costs
    return max(costs) / (sum(costs) / len(costs))


def _output_skew(metrics):
    outputs = metrics.activation_outputs
    mean = sum(outputs) / len(outputs)
    return max(outputs) / mean if mean else 1.0


def test_taxonomy_signatures(benchmark, record_result):
    def run():
        return {
            "AVS/TPS": _run(make_avs_workload()),
            "SS": _run(make_ss_workload()),
            "RS": _run(make_rs_workload()),
            "JPS": _run(make_jps_workload()),
        }

    executions = run_once(benchmark, run)

    from repro.bench.harness import ExperimentResult
    result = ExperimentResult(
        experiment_id="skew_taxonomy",
        title="Walton taxonomy signatures on the filter-join pipeline",
        x_label="case",
        x_values=tuple(float(i) for i in range(4)),
    )
    kinds = ["AVS/TPS", "SS", "RS", "JPS"]
    result.add_series("join cost skew", [
        _cost_skew(executions[k].operation("join")) for k in kinds])
    result.add_series("filter output skew", [
        _output_skew(executions[k].operation("filter")) for k in kinds])
    result.add_series("join queue imbalance", [
        executions[k].operation("join").queue_imbalance() for k in kinds])
    result.add_series("join output skew", [
        _output_skew(executions[k].operation("join")) for k in kinds])
    result.notes["cases"] = kinds
    record_result(result)

    avs = executions["AVS/TPS"]
    ss = executions["SS"]
    rs = executions["RS"]
    jps = executions["JPS"]

    # AVS/TPS: join activation costs are heavily skewed; placement is not.
    assert _cost_skew(avs.operation("join")) > 2.5
    # SS: the filter instances emit unevenly (half emit nothing).
    assert _output_skew(ss.operation("filter")) >= 1.8
    assert _cost_skew(ss.operation("join")) < 1.2
    # RS: redistribution floods few queues; per-activation cost is flat.
    assert rs.operation("join").queue_imbalance() > 2.5
    assert _cost_skew(rs.operation("join")) < 1.2
    # JPS: some probes emit far more matches than the mean.
    assert _output_skew(jps.operation("join")) > 10
    # Cross-checks: each signature is *specific* to its case.
    assert avs.operation("join").queue_imbalance() < 1.5
    assert jps.operation("join").queue_imbalance() < 1.5
