"""Figure 14: AssocJoin speed-up — near-linear to 70 even fully skewed."""

from conftest import FULL, run_once

from repro.bench import fig14_assocjoin_speedup


def test_fig14_assocjoin_speedup(benchmark, record_result):
    card_b = 20_000 if FULL else 10_000
    if FULL:
        result = run_once(benchmark, fig14_assocjoin_speedup.run)
    else:
        result = run_once(benchmark, lambda: fig14_assocjoin_speedup.run(
            card_a=100_000, card_b=card_b,
            thread_counts=(10, 30, 50, 70, 100)))
    record_result(result)

    unskewed = result.get("unskewed")
    skewed = result.get("zipf=1")
    threads = result.x_values
    at = {t: i for i, t in enumerate(threads)}

    # Near-linear speed-up to 70 threads ("greater than 60 with 70
    # processors" in the paper; engine-overhead slack, a little wider
    # at the reduced workload size where overheads weigh more).
    floor = 55 if FULL else 50
    assert unskewed.values[at[70]] > floor

    # Skew costs at most equation (3)'s bound: with Zipf = 1 and 200
    # fragments Pmax/P ~= 34, so v <= 34 * (n-1) / |B'|.
    for i, n in enumerate(threads):
        gap = 1 - skewed.values[i] / unskewed.values[i]
        bound = 34 * (min(n, 70) - 1) / card_b
        assert gap < bound + 0.05, \
            f"skew gap {gap:.3f} exceeds bound {bound:.3f} at {n} threads"

    # No benefit past the processor count.
    assert skewed.values[at[100]] <= skewed.values[at[70]] * 1.05
    assert unskewed.values[at[100]] <= unskewed.values[at[70]] * 1.05
