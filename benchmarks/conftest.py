"""Benchmark-suite helpers.

Every figure benchmark runs its experiment once inside
``benchmark.pedantic`` (the experiments are deterministic virtual-time
sweeps, not microbenchmarks), asserts the paper's qualitative shape,
and archives the rendered series table under ``benchmarks/results/``
so the regenerated figures can be inspected and diffed.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale knob: REPRO_BENCH_FULL=1 runs the full paper-size sweeps.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def record_result():
    """Write one experiment's rendered table to benchmarks/results/."""
    def _record(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")
    return _record


def run_once(benchmark, fn):
    """Execute *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
