"""Figure 18: skew overhead v(0.6) collapses as the degree grows."""

from conftest import FULL, run_once

from repro.bench import fig18_skew_overhead_degree


def test_fig18_skew_overhead_vs_degree(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig18_skew_overhead_degree.run)
    else:
        result = run_once(benchmark, lambda: fig18_skew_overhead_degree.run(
            degrees=(40, 100, 250, 500, 1000, 1500)))
    record_result(result)

    nested = result.get("v (nested loop)")
    indexed = result.get("v (temp index)")
    vworst = result.get("vworst")
    degrees = result.x_values

    # v falls sharply with the degree and essentially vanishes.
    assert nested.values[0] > 0.5
    assert indexed.values[0] > 0.5
    for series in (nested, indexed):
        high_degree = [v for d, v in zip(degrees, series.values) if d >= 500]
        assert all(v < 0.10 for v in high_degree), \
            f"{series.label}: high-degree v still {max(high_degree):.3f}"

    # The behaviour is independent of the join algorithm (the paper's
    # "two curves are almost identical").
    for n, i in zip(nested.values, indexed.values):
        assert abs(n - i) < 0.35

    # Measured v stays under the equation (3) bound.
    for series in (nested, indexed):
        for v, bound in zip(series.values, vworst.values):
            assert v <= bound * 1.05 + 0.02


def test_fig18_assoc_flatness(benchmark, record_result):
    """Section 5.6.2: AssocJoin's v(0.6) < 0.03 at any degree."""
    result = run_once(benchmark, fig18_skew_overhead_degree.run_assoc_flatness)
    record_result(result)
    limit = result.notes["paper_limit"]
    for v in result.get("v").values:
        assert v < limit + 0.01, f"AssocJoin v(0.6)={v:.3f} exceeds {limit}"
