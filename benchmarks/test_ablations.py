"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches one mechanism of the DBS3 execution model off
(or replaces it with the baseline alternative) and measures the effect
on a skewed triggered join and/or a pipelined join.
"""

from conftest import run_once

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    Executor,
    OperationSchedule,
    QuerySchedule,
)
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler, StaticScheduler

MACHINE = Machine.uniform(processors=32)

CARD_A, CARD_B, DEGREE = 50_000, 5_000, 100


def _ideal_plan(theta):
    database = make_join_database(CARD_A, CARD_B, DEGREE, theta)
    return database, ideal_join_plan(database.entry_a, database.entry_b,
                                     "key", "key")


def test_ablation_dynamic_vs_static_binding(benchmark, record_result):
    """DBS3's decoupled pools + queue sharing vs the classic
    one-thread-per-instance static binding, under high skew."""
    database, plan = _ideal_plan(theta=1.0)
    executor = Executor(MACHINE)

    def run():
        adaptive = executor.execute(
            plan, AdaptiveScheduler(MACHINE).schedule(plan, total_threads=20))
        static = executor.execute(
            plan, StaticScheduler(MACHINE).schedule(plan))
        return adaptive, static

    adaptive, static = run_once(benchmark, run)
    # Same work, same results.
    assert adaptive.result_cardinality == static.result_cardinality
    # The static binding leaves the skewed fragment's thread as a
    # straggler while its siblings idle; DBS3 balances across queues.
    assert adaptive.response_time < static.response_time
    assert static.operations["join"].secondary_accesses == 0


def test_ablation_lpt_vs_random_triggered_skew(benchmark):
    """Step 4's strategy choice: LPT's advantage appears exactly for
    skewed triggered operators."""
    database, plan = _ideal_plan(theta=0.8)
    executor = Executor(MACHINE)

    def run():
        random_run = executor.execute(
            plan, QuerySchedule.for_plan(plan, 10, strategy="random"))
        lpt_run = executor.execute(
            plan, QuerySchedule.for_plan(plan, 10, strategy="lpt"))
        return random_run, lpt_run

    random_run, lpt_run = run_once(benchmark, run)
    assert lpt_run.response_time <= random_run.response_time
    # and for *uniform* data the choice is immaterial (within noise)
    _, uniform_plan = _ideal_plan(theta=0.0)
    uniform_random = executor.execute(
        uniform_plan, QuerySchedule.for_plan(uniform_plan, 10,
                                             strategy="random"))
    uniform_lpt = executor.execute(
        uniform_plan, QuerySchedule.for_plan(uniform_plan, 10,
                                             strategy="lpt"))
    gap = abs(uniform_lpt.response_time - uniform_random.response_time)
    assert gap / uniform_random.response_time < 0.05


def test_ablation_internal_activation_cache(benchmark):
    """Figure 4's IntCache: larger batches cut queue-mutex traffic but
    coarsen the unit of balancing — the skew tail grows."""
    database = make_join_database(CARD_A, CARD_B, DEGREE, theta=1.0)
    plan = assoc_join_plan(database.entry_a, database.entry_b, "key", "key")
    executor = Executor(MACHINE)

    def schedule(cache):
        return QuerySchedule({
            "transmit": OperationSchedule(2),
            "join": OperationSchedule(8, cache_size=cache),
        })

    def run():
        return {cache: executor.execute(plan, schedule(cache))
                for cache in (1, 16, 64)}

    runs = run_once(benchmark, run)
    # Batching reduces dequeue (mutex) operations ...
    assert (runs[64].operations["join"].dequeue_batches
            < runs[1].operations["join"].dequeue_batches / 4)
    # ... but the response time does not improve under skew (the tail
    # is coarser); identical results regardless.
    assert runs[64].response_time >= runs[1].response_time * 0.98
    assert {r.result_cardinality for r in runs.values()} == {
        database.expected_matches}


def test_ablation_degree_decoupled_from_parallelism(benchmark):
    """d >> n (DBS3) vs d = n (partitioning dictates parallelism):
    under skew, fine partitioning with few threads wins."""
    threads = 10

    def run():
        fine = make_join_database(CARD_A, CARD_B, degree=200, theta=0.8)
        coarse = make_join_database(CARD_A, CARD_B, degree=threads, theta=0.8)
        executor = Executor(MACHINE)
        plan_fine = ideal_join_plan(fine.entry_a, fine.entry_b, "key", "key")
        plan_coarse = ideal_join_plan(coarse.entry_a, coarse.entry_b,
                                      "key", "key")
        t_fine = executor.execute(
            plan_fine,
            QuerySchedule.for_plan(plan_fine, threads, strategy="lpt"))
        t_coarse = executor.execute(
            plan_coarse,
            QuerySchedule.for_plan(plan_coarse, threads, strategy="lpt"))
        return t_fine, t_coarse

    fine_run, coarse_run = run_once(benchmark, run)
    assert fine_run.response_time < coarse_run.response_time


def test_ablation_grain_of_parallelism(benchmark):
    """The paper's future-work extension: chunked triggers give a
    triggered join pipeline-like skew resistance without repartitioning
    — at low degree, grain=16 approaches what degree=16x would buy."""
    threads = 10

    def run():
        database = make_join_database(CARD_A, CARD_B, degree=10, theta=1.0)
        executor = Executor(MACHINE)
        results = {}
        for grain in (1, 4, 16):
            plan = ideal_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", grain=grain)
            results[grain] = executor.execute(
                plan, QuerySchedule.for_plan(plan, threads, strategy="lpt"))
        return results

    results = run_once(benchmark, run)
    # identical relational results at every grain
    assert len({r.result_cardinality for r in results.values()}) == 1
    # finer grain monotonically improves the skewed response time ...
    assert results[4].response_time < results[1].response_time
    assert results[16].response_time < results[4].response_time
    # ... approaching the ideal balance
    ideal = results[16].operations["join"].work / threads
    assert results[16].response_time < ideal * 1.35 + results[16].startup_time
    # grain=1 is pinned by the largest fragment's activation
    pmax = max(results[1].operations["join"].activation_costs)
    assert results[1].response_time >= pmax


def test_ablation_queue_capacity_backpressure(benchmark):
    """Bounded activation queues (the NotFull condition of Figure 4):
    tight capacities throttle the transmit producer without changing
    results; generous capacities reclaim the pipelining."""
    from repro.engine.executor import ExecutionOptions

    database = make_join_database(CARD_A, CARD_B, DEGREE, theta=0.0)
    plan = assoc_join_plan(database.entry_a, database.entry_b, "key", "key")
    schedule = QuerySchedule({
        "transmit": OperationSchedule(4),
        "join": OperationSchedule(4),
    })

    def run():
        results = {}
        for capacity in (1, 32, None):
            executor = Executor(MACHINE,
                                ExecutionOptions(queue_capacity=capacity))
            results[capacity] = executor.execute(plan, schedule)
        return results

    results = run_once(benchmark, run)
    assert len({r.result_cardinality for r in results.values()}) == 1
    # back-pressure can only slow the pipeline down
    assert results[1].response_time >= results[None].response_time - 1e-9
    assert results[32].response_time >= results[None].response_time - 1e-9
    # with capacity 1 the producer demonstrably blocked: its pool's
    # idle share grows versus the unbounded run
    tight = results[1].operations["transmit"]
    free = results[None].operations["transmit"]
    assert tight.response_time >= free.response_time


def test_ablation_main_queue_discipline(benchmark):
    """Main-first consumption keeps threads on their own queues while
    work flows (low interference); secondary accesses only appear when
    balancing is actually needed."""
    database = make_join_database(CARD_A, CARD_B, DEGREE, theta=0.0)
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key")
    executor = Executor(MACHINE)

    def run():
        return executor.execute(plan, QuerySchedule.for_plan(plan, 10))

    execution = run_once(benchmark, run)
    join = execution.operations["join"]
    # Uniform data, continuous flow: the overwhelming share of batches
    # comes from main queues.
    assert join.secondary_accesses <= join.dequeue_batches * 0.25
