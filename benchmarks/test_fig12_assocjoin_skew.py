"""Figure 12: AssocJoin execution time vs skew (flat, near Tworst)."""

from conftest import FULL, run_once

from repro.bench import fig12_assocjoin_skew


def test_fig12_assocjoin_skew(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig12_assocjoin_skew.run)
    else:
        result = run_once(benchmark, lambda: fig12_assocjoin_skew.run(
            card_a=50_000, card_b=5_000,
            thetas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0)))
    record_result(result)

    measured = result.get("measured (Random)")
    worst = result.get("Tworst")
    ideal = result.get("Tideal")

    # Paper: constant whatever the skew (max deviation ~3%).
    assert measured.spread() < 0.05, \
        f"AssocJoin must be skew-insensitive; spread={measured.spread():.3f}"
    # Measured sits between the analytic ideal and worst bounds
    # (small queue-machinery slack allowed).
    for m, w, i in zip(measured.values, worst.values, ideal.values):
        assert m <= w * 1.05
        assert m >= i * 0.98
    # Join results are identical across skew levels.
    cardinalities = set(result.notes["result_cardinalities"])
    assert len(cardinalities) == 1
