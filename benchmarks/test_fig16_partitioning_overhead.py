"""Figure 16: linear partitioning overhead; AssocJoin's slope ~10x."""

from conftest import FULL, run_once

from repro.bench import fig16_partitioning_overhead


def test_fig16_partitioning_overhead(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig16_partitioning_overhead.run)
    else:
        result = run_once(benchmark, lambda: fig16_partitioning_overhead.run(
            degrees=(20, 250, 500, 1000, 1500)))
    record_result(result)

    ideal_overhead = result.get("overhead IdealJoin")
    assoc_overhead = result.get("overhead AssocJoin")

    # Overheads grow with the degree (roughly linear).
    assert ideal_overhead.values[-1] > ideal_overhead.values[0]
    assert assoc_overhead.values[-1] > assoc_overhead.values[0]

    # AssocJoin per-degree overhead is roughly an order of magnitude
    # above IdealJoin's (paper: 4 ms/degree vs 0.45 ms/degree).
    slope_ideal = result.notes["slope_ideal_ms_per_degree"]
    slope_assoc = result.notes["slope_assoc_ms_per_degree"]
    assert slope_assoc > 4 * slope_ideal
    # Slopes land within a factor ~2 of the paper's values.
    assert 0.2 <= slope_ideal <= 1.0, f"IdealJoin slope {slope_ideal:.2f} ms/deg"
    assert 2.0 <= slope_assoc <= 8.0, f"AssocJoin slope {slope_assoc:.2f} ms/deg"

    # Despite the overhead, the nested-loop times themselves fall
    # dramatically with the degree (the 1/d work scaling).
    ideal_times = result.get("time IdealJoin")
    assert ideal_times.values[-1] < ideal_times.values[0] / 10
