"""Multi-user throughput and the [Rahm93] thread-damping hook.

Scheduler step 1 can reduce the single-user thread optimum "according
to the average processor utilization in order to increase the
multi-user throughput".  This bench runs a batch of concurrent joins
at several damping factors and measures makespan and throughput.
"""

from conftest import run_once

from repro.bench.workloads import make_join_database
from repro.engine.concurrent import ConcurrentExecutor
from repro.lera.plans import ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler

PROCESSORS = 16
QUERIES = 6


def _batch(multi_user_factor: float):
    machine = Machine.uniform(processors=PROCESSORS)
    scheduler = AdaptiveScheduler(machine,
                                  multi_user_factor=multi_user_factor)
    workload = []
    for i in range(QUERIES):
        database = make_join_database(20_000, 2_000, degree=40, theta=0.0,
                                      name_a=f"A{i}", name_b=f"B{i}")
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        workload.append((plan, scheduler.schedule(plan)))
    return ConcurrentExecutor(machine).execute(workload), workload


def test_multiuser_throughput(benchmark, record_result):
    def run():
        return {factor: _batch(factor) for factor in (1.0, 0.5, 0.25)}

    batches = run_once(benchmark, run)

    from repro.bench.harness import ExperimentResult
    result = ExperimentResult(
        experiment_id="multiuser",
        title=(f"{QUERIES} concurrent IdealJoins on {PROCESSORS} processors "
               f"vs scheduler damping factor"),
        x_label="factor",
        x_values=(1.0, 0.5, 0.25),
    )
    result.add_series("makespan",
                      [batches[f][0].makespan for f in (1.0, 0.5, 0.25)])
    result.add_series("threads", [
        sum(e.total_threads for e in batches[f][0].executions)
        for f in (1.0, 0.5, 0.25)])
    result.add_series("mean response", [
        batches[f][0].mean_response_time for f in (1.0, 0.5, 0.25)])
    record_result(result)

    full, _ = batches[1.0]
    damped, _ = batches[0.5]
    # Damping cuts total thread allocation substantially ...
    assert (sum(e.total_threads for e in damped.executions)
            < sum(e.total_threads for e in full.executions) * 0.75)
    # ... while the saturated machine keeps near-equal throughput.
    assert damped.makespan < full.makespan * 1.25
    # Every query still returns its full result.
    assert all(e.result_cardinality == 2000 for e in full.executions)


def test_multiuser_vs_serial(benchmark):
    """Concurrency wins when the machine has spare processors."""
    machine = Machine.uniform(processors=32)
    scheduler = AdaptiveScheduler(machine)

    def run():
        from repro.engine.executor import Executor
        workload = []
        for i in range(4):
            database = make_join_database(10_000, 1_000, degree=20,
                                          theta=0.0,
                                          name_a=f"S{i}", name_b=f"T{i}")
            plan = ideal_join_plan(database.entry_a, database.entry_b,
                                   "key", "key")
            workload.append((plan, scheduler.schedule(plan, 6)))
        concurrent = ConcurrentExecutor(machine).execute(workload)
        serial = sum(Executor(machine).execute(plan, schedule).response_time
                     for plan, schedule in workload)
        return concurrent, serial

    concurrent, serial = run_once(benchmark, run)
    assert concurrent.makespan < serial * 0.6
