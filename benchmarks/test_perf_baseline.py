"""Wall-clock perf-regression smoke test (``pytest -m perf`` / ``make perf``).

Re-runs the quick perf matrix and compares it against the committed
``BENCH_engine.json``: any cell more than 20 % slower than the
recorded best-of-N, or any drift in virtual response time or result
cardinality, fails the run.  Marked ``perf`` and excluded from tier-1
(``testpaths`` stops at ``tests/``) because wall-clock assertions are
only meaningful on a quiet machine.
"""

import pathlib

import pytest

from repro.bench.perf_baseline import (
    SHARED_SPEEDUP_MIN,
    compare_adaptive,
    compare_concurrent,
    compare_faults,
    compare_matrices,
    compare_monitor,
    compare_obs,
    compare_obs_workload,
    compare_session,
    compare_shared,
    load_baseline,
    render,
    render_adaptive,
    render_concurrent,
    render_faults,
    render_monitor,
    render_obs,
    render_obs_workload,
    compare_serving,
    render_session,
    render_serving,
    render_shared,
    run_adaptive_cell,
    run_concurrent_cell,
    run_faults_overhead,
    run_matrix,
    run_monitor_overhead,
    run_obs_overhead,
    run_obs_workload,
    run_serving_cell,
    run_session_overhead,
    run_shared_cell,
)

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


@pytest.mark.perf
def test_quick_matrix_has_not_regressed():
    baseline = load_baseline(BASELINE_PATH)
    current = run_matrix(quick=True, seed=0)
    print()
    print(render(current))
    problems = compare_matrices(baseline["quick"]["after"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_obs_disabled_overhead_has_not_regressed():
    """With observability off, the guards may cost at most 5 % wall
    clock against the committed disabled-mode baseline; turning it on
    must not move virtual time or results."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_obs_overhead(quick=True, seed=0)
    print()
    print(render_obs(current))
    problems = compare_obs(baseline["observability"]["quick"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_obs_workload_telemetry_overhead_within_gate():
    """The MPL-4 twin of the obs gate: the disabled mode's virtual
    makespan and results are pinned exactly against the committed
    record, and turning the registry and span assembly on may cost at
    most 5 % wall clock over the disabled twin timed in the same
    process (within-run — cross-epoch wall gates flap on this box)
    and must move neither the virtual makespan nor the results."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_obs_workload(quick=True, seed=0)
    print()
    print(render_obs_workload(current))
    problems = compare_obs_workload(baseline["obs_workload"]["quick"],
                                    current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_monitor_overhead_within_gate():
    """The online-observability gate: monitor rules may cost at most
    5 % wall clock over the bare MPL-4 twin timed in the same process,
    neither monitors nor the self-profiler may move virtual time or
    results, the monitored alert count must reproduce the committed
    count exactly (deterministic per seed), and the profiler must
    attribute >= 90 % of the engine wall to named subsystems."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_monitor_overhead(quick=True, seed=0)
    print()
    print(render_monitor(current))
    problems = compare_monitor(baseline["monitor"]["quick"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_session_path_overhead_within_gate():
    """Routing one query through the workload layer (``db.query`` is
    now a one-query session) may cost at most 5 % wall clock over the
    direct executor, and must not move virtual time or results.  The
    comparison is within-run — both modes are timed interleaved on the
    same machine — so no committed baseline is needed."""
    current = run_session_overhead(quick=True, seed=0)
    print()
    print(render_session(current))
    problems = compare_session(current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_faults_layer_free_when_inactive():
    """Attaching an *empty* fault plan (every injector hook live,
    nothing injected) may cost at most 5 % wall clock over running
    with no plan, and must not move virtual time or results.  The
    comparison is within-run, so no committed baseline is needed —
    the committed ``faults`` section of BENCH_engine.json documents
    the recorded ratio."""
    current = run_faults_overhead(quick=True, seed=0)
    print()
    print(render_faults(current))
    problems = compare_faults(current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_concurrent_cell_has_not_regressed():
    """The MPL-4 shared-simulation workload cell: wall clock within
    20 % of the committed best-of-N, virtual makespan and result rows
    pinned exactly, and a real (>1x) virtual speed-up over running the
    same four queries back-to-back."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_concurrent_cell(quick=True, seed=0)
    print()
    print(render_concurrent(current))
    problems = compare_concurrent(baseline["concurrent"]["quick"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_shared_workload_cell_holds_its_gates():
    """The MPL-8 shared-work cell: the fully-overlapping workload must
    fold to >= 2x virtual speed-up over its private twin, the
    zero-overlap workload must never be worse with sharing on (exact
    in virtual time, within the matrix threshold in within-run wall
    clock), sharing must not change any result cardinality, every
    virtual makespan must match the committed record bit for bit, and
    the default (``shared=False``) probe must reproduce the committed
    pre-sharing concurrent makespan exactly."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_shared_cell(quick=True, seed=0)
    print()
    print(render_shared(current))
    problems = compare_shared(baseline["shared"]["quick"], current,
                              baseline["concurrent"]["quick"])
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_committed_shared_baseline_documents_the_fold():
    """The committed shared section must document the headline claim —
    >= 2x at MPL 8 with full overlap, never worse at zero overlap, and
    an escape hatch bit-identical to the pre-sharing engine — at both
    scales."""
    baseline = load_baseline(BASELINE_PATH)
    for scale in ("quick", "full"):
        record = baseline["shared"][scale]
        assert record["workload"]["mpl"] >= 8
        assert record["overlap_gain_virtual"] >= SHARED_SPEEDUP_MIN, scale
        assert record["disjoint_ratio_virtual"] <= 1.0, scale
        modes = record["modes"]
        for pair in ("disjoint", "overlap"):
            assert (modes[f"{pair}_shared"]["result_rows"]
                    == modes[f"{pair}_private"]["result_rows"]), scale
        assert (modes["concurrent_default"]["makespan_virtual_s"]
                == baseline["concurrent"][scale]["makespan_virtual_s"]), scale


@pytest.mark.perf
def test_adaptive_cell_holds_its_gates():
    """The adaptive-scheduling gate: on the committed slowed cell the
    adaptive policy must strictly beat static in virtual time, both
    trajectories (makespans, rows, decision count) must reproduce the
    committed record bit for bit, the uniform cell must stay
    bit-identical across policies, and the controller may cost at most
    5 % wall clock over its static twin timed in the same process."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_adaptive_cell(quick=True, seed=0)
    print()
    print(render_adaptive(current))
    problems = compare_adaptive(baseline["adaptive"]["quick"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_committed_adaptive_baseline_documents_the_win():
    """The committed adaptive section must document the headline claim
    — adaptive strictly faster than static on the slowed cell, the
    uniform cell bit-identical, at least one recorded decision — at
    both scales."""
    baseline = load_baseline(BASELINE_PATH)
    for scale in ("quick", "full"):
        record = baseline["adaptive"][scale]
        modes = record["modes"]
        assert (modes["adaptive"]["makespan_virtual_s"]
                < modes["static"]["makespan_virtual_s"]), scale
        assert modes["adaptive"]["decisions"] >= 1, scale
        assert (modes["adaptive"]["result_rows"]
                == modes["static"]["result_rows"]), scale
        uniform = record["uniform_makespan_virtual_s"]
        assert uniform["adaptive"] == uniform["static"], scale


@pytest.mark.perf
def test_serving_cell_holds_its_gates():
    """The serving-layer gate: ``serving=None`` must reproduce the
    committed pre-serving virtual makespan bit for bit, a default FIFO
    ServingPolicy must be virtually indistinguishable from it within
    the same run while costing at most 5 % wall clock over its
    interleaved twin, and the protected (EDF + bounded queue) overload
    response — virtual makespan and shed/done counts — must match the
    committed record exactly."""
    baseline = load_baseline(BASELINE_PATH)
    current = run_serving_cell(quick=True, seed=0)
    print()
    print(render_serving(current))
    problems = compare_serving(baseline["serving"]["quick"], current)
    assert not problems, "\n".join(problems)


@pytest.mark.perf
def test_committed_serving_baseline_documents_the_protection():
    """The committed serving section must document the headline claim
    — the FIFO policy object exactly reproduces the legacy engine, and
    the protected mode under 2x overload sheds pre-admission while
    completing the rest — at both scales."""
    baseline = load_baseline(BASELINE_PATH)
    for scale in ("quick", "full"):
        record = baseline["serving"][scale]
        modes = record["modes"]
        assert (modes["serving_on"]["makespan_virtual_s"]
                == modes["serving_off"]["makespan_virtual_s"]), scale
        assert (modes["serving_on"]["statuses"]
                == modes["serving_off"]["statuses"]), scale
        protected = modes["protected"]
        assert protected["statuses"].get("shed", 0) > 0, scale
        total = sum(protected["statuses"].values())
        assert total == record["workload"]["count"], scale


@pytest.mark.perf
def test_committed_baseline_recorded_the_speedup():
    """The committed before/after must document a real improvement."""
    baseline = load_baseline(BASELINE_PATH)
    for scale in ("full", "quick"):
        before = baseline[scale]["before"]["cells"]
        after = baseline[scale]["after"]["cells"]
        assert before.keys() == after.keys()
        for key in before:
            # Semantics pinned: the overhaul moved no virtual time.
            assert (before[key]["virtual_response_s"]
                    == after[key]["virtual_response_s"]), key
            assert before[key]["result_rows"] == after[key]["result_rows"]
    # Headline claim: the degree-1500 paths of the suite (Figures
    # 16/17: one triggered and one pipelined execution at d = 1500)
    # run >= 2x faster end to end.  The pipelined side — where the
    # legacy scan was quadratic-worst — must clear 2x on its own; the
    # triggered cell is dominated by the actual join work (which both
    # engines pay identically), so it contributes but isn't held to
    # the bar alone.
    full = baseline["full"]
    before = sum(full["before"]["cells"][f"{m}@1500"]["min_s"]
                 for m in ("triggered", "pipelined"))
    after = sum(full["after"]["cells"][f"{m}@1500"]["min_s"]
                for m in ("triggered", "pipelined"))
    assert before / after >= 2.0, f"degree 1500: only {before/after:.2f}x"
    pipelined = (full["before"]["cells"]["pipelined@1500"]["min_s"]
                 / full["after"]["cells"]["pipelined@1500"]["min_s"])
    assert pipelined >= 2.0, f"pipelined@1500: only {pipelined:.2f}x"
