"""Concurrent workloads: sharing the machine must beat back-to-back."""

from conftest import FULL, run_once

from repro.bench import fig_concurrent


def test_fig_concurrent_throughput(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, lambda: fig_concurrent.run(
            fig_concurrent.PAPER_CARD_A, fig_concurrent.PAPER_CARD_B,
            fig_concurrent.PAPER_DEGREE))
    else:
        result = run_once(benchmark, fig_concurrent.run)
    record_result(result)

    levels = result.x_values
    serial = result.get("back_to_back_s")
    makespan = result.get("makespan_s")
    throughput = result.get("throughput_qps")
    speedup = result.get("speedup")
    at = {level: i for i, level in enumerate(levels)}

    # MPL = 1: the workload layer adds zero virtual time — the
    # makespan IS the single-query response time.
    assert makespan.values[at[1]] == serial.values[at[1]]
    assert speedup.values[at[1]] == 1.0

    # Every MPL >= 2 beats back-to-back execution strictly.
    for i, level in enumerate(levels):
        if level >= 2:
            assert makespan.values[i] < serial.values[i], \
                f"no concurrency win at MPL {level}"

    # Throughput rises from 1 to the top multiprogramming level (the
    # machine is far from saturated by one 24-thread query).
    assert throughput.values[-1] > throughput.values[at[1]]

    # Speed-up never collapses back to serial at higher MPLs.
    assert min(speedup.values[1:]) > 1.2


def test_fig_sharing_fold_gains(benchmark, record_result):
    """The shared-work overlap sweep: folding identical subplans must
    collapse the fully-overlapping workload toward one physical
    execution, never hurt disjoint workloads, and scale with the
    overlap fraction in between."""
    if FULL:
        result = run_once(benchmark, lambda: fig_concurrent.run_sharing(
            fig_concurrent.PAPER_CARD_A, fig_concurrent.PAPER_CARD_B,
            fig_concurrent.PAPER_DEGREE))
    else:
        result = run_once(benchmark, fig_concurrent.run_sharing)
    record_result(result)

    levels = result.x_values
    at = {level: i for i, level in enumerate(levels)}

    # 0 % overlap: the fold pass finds nothing — the shared engine
    # must cost zero virtual time over the private one, at every MPL.
    private0 = result.get("private_s_o0")
    shared0 = result.get("shared_s_o0")
    for i, level in enumerate(levels):
        assert shared0.values[i] <= private0.values[i] * (1 + 1e-9), \
            f"sharing hurt a disjoint workload at MPL {level}"

    # 100 % overlap: one physical execution serves every subscriber —
    # the shared makespan stays flat at the single-query time while
    # the private makespan grows with MPL.
    shared100 = result.get("shared_s_o100")
    gain100 = result.get("gain_o100")
    single = shared100.values[at[1]]
    assert shared100.spread() < 0.01, "shared makespan should stay flat"
    assert abs(shared100.values[-1] - single) < 0.01 * single
    assert gain100.values[-1] >= 2.0, \
        f"only {gain100.values[-1]:.2f}x at MPL {levels[-1]} full overlap"

    # 50 % overlap sits between the two extremes at the top MPL.
    gain50 = result.get("gain_o50")
    assert 1.0 <= gain50.values[-1] <= gain100.values[-1]
