"""Concurrent workloads: sharing the machine must beat back-to-back."""

from conftest import FULL, run_once

from repro.bench import fig_concurrent


def test_fig_concurrent_throughput(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, lambda: fig_concurrent.run(
            fig_concurrent.PAPER_CARD_A, fig_concurrent.PAPER_CARD_B,
            fig_concurrent.PAPER_DEGREE))
    else:
        result = run_once(benchmark, fig_concurrent.run)
    record_result(result)

    levels = result.x_values
    serial = result.get("back_to_back_s")
    makespan = result.get("makespan_s")
    throughput = result.get("throughput_qps")
    speedup = result.get("speedup")
    at = {level: i for i, level in enumerate(levels)}

    # MPL = 1: the workload layer adds zero virtual time — the
    # makespan IS the single-query response time.
    assert makespan.values[at[1]] == serial.values[at[1]]
    assert speedup.values[at[1]] == 1.0

    # Every MPL >= 2 beats back-to-back execution strictly.
    for i, level in enumerate(levels):
        if level >= 2:
            assert makespan.values[i] < serial.values[i], \
                f"no concurrency win at MPL {level}"

    # Throughput rises from 1 to the top multiprogramming level (the
    # machine is far from saturated by one 24-thread query).
    assert throughput.values[-1] > throughput.values[at[1]]

    # Speed-up never collapses back to serial at higher MPLs.
    assert min(speedup.values[1:]) > 1.2
