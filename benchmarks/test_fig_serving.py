"""Serving under overload: the ISSUE's acceptance criteria.

Reduced-scale run of :mod:`repro.bench.fig_serving` (the committed
figure uses 1000 queries/point; CI sweeps 150) asserting the
overload-protection headlines: goodput holds past saturation under
EDF + bounded queue, the priority policy keeps its top class inside
the SLO while the FIFO baseline's p99 diverges, and twin runs of one
seed are byte-identical decision for decision.
"""

from conftest import FULL, run_once

from repro.bench import fig_serving

CI_COUNT = 150


def test_fig_serving_overload_protection(benchmark, record_result):
    if FULL:
        result = run_once(benchmark,
                          lambda: fig_serving.run(count=fig_serving.COUNT))
    else:
        result = run_once(benchmark, lambda: fig_serving.run(count=CI_COUNT))
    record_result(result)

    multipliers = result.x_values
    at = {multiplier: i for i, multiplier in enumerate(multipliers)}
    saturation = result.notes["saturation_qps"]
    slo = result.notes["top_class_slo_s"]

    # Goodput under 2x overload holds >= 80 % of the saturation
    # throughput: shedding the least-urgent waiters pre-admission
    # keeps the machine on work that still completes within SLO.
    goodput = result.get("edf_goodput_qps")
    assert goodput.values[at[2.0]] >= 0.8 * saturation, \
        (f"EDF goodput at 2x is {goodput.values[at[2.0]]:.1f} q/s, "
         f"< 80% of saturation {saturation:.1f} q/s")

    # The protection actually engaged: load was shed at overload,
    # none below saturation.
    shed = result.get("edf_shed")
    assert shed.values[at[2.0]] > 0
    assert shed.values[at[0.5]] == 0

    # FIFO's top class blows its SLO at 2x while the priority policy
    # keeps the same class's p99 inside it on the same arrivals.
    fifo_top = result.get("fifo_top_class_p99_s")
    priority_top = result.get("priority_top_class_p99_s")
    assert fifo_top.values[at[2.0]] > slo, \
        "FIFO baseline never violated the SLO — overload unreachable?"
    assert priority_top.values[at[2.0]] <= slo, \
        (f"priority top-class p99 {priority_top.values[at[2.0]]:.3f}s "
         f"broke its {slo:g}s SLO at 2x")

    # The baseline's overall p99 diverges as the rate climbs past
    # saturation; the protected top class stays flat.
    fifo = result.get("fifo_p99_s")
    assert fifo.values[-1] > 3 * fifo.values[at[0.5]]
    assert priority_top.values[-1] <= slo


def test_fig_serving_twin_runs_byte_identical(benchmark):
    """Same seed, same arrivals, same decisions — digest-equal."""
    from repro.bench.fig_serving import MAX_CONCURRENT, serving_machine
    from repro.serve.harness import decision_digest, run_serving
    from repro.serve.policies import ServingPolicy
    from repro.workload.options import WorkloadOptions

    def twin_pair():
        machine = serving_machine()
        workload = WorkloadOptions(
            max_concurrent=MAX_CONCURRENT,
            serving=ServingPolicy(policy="edf",
                                  queue_limit=fig_serving.QUEUE_LIMIT))
        return [decision_digest(run_serving(
                    rate=60.0, count=200, seed=7, machine=machine,
                    workload=workload))
                for _ in range(2)]

    first, second = run_once(benchmark, twin_pair)
    assert first == second
