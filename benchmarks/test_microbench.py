"""Microbenchmarks of the substrate hot paths (real wall-clock timing).

Unlike the figure benches (which run a deterministic virtual-time
experiment once), these measure the Python implementation itself:
partitioning throughput, index builds, engine activation throughput.
"""

from repro.bench.workloads import make_join_database
from repro.engine.executor import Executor, QuerySchedule
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.partitioning import HashPartitioner, PartitioningSpec
from repro.storage.skew import zipf_cardinalities
from repro.storage.wisconsin import generate_wisconsin

MACHINE = Machine.uniform(processors=16)


def test_bench_hash_partitioning(benchmark):
    relation = generate_wisconsin("W", 20_000, seed=3)
    partitioner = HashPartitioner(PartitioningSpec.on("unique1", 64))
    fragments = benchmark(partitioner.partition, relation)
    assert sum(f.cardinality for f in fragments) == 20_000


def test_bench_wisconsin_generation(benchmark):
    relation = benchmark(generate_wisconsin, "W", 10_000, 1)
    assert relation.cardinality == 10_000


def test_bench_sorted_index_build(benchmark):
    rows = [(i * 7 % 10_000, i) for i in range(10_000)]
    index = benchmark(SortedIndex, rows, 0)
    assert len(index) == 10_000


def test_bench_hash_index_probe(benchmark):
    rows = [(i, i) for i in range(10_000)]
    index = HashIndex(rows, 0)

    def probe():
        hits = 0
        for key in range(0, 10_000, 7):
            hits += len(index.lookup(key))
        return hits

    assert benchmark(probe) > 0


def test_bench_zipf_cardinalities(benchmark):
    cards = benchmark(zipf_cardinalities, 1_000_000, 1500, 0.8)
    assert sum(cards) == 1_000_000


def test_bench_engine_triggered_throughput(benchmark):
    """Wall-clock cost of simulating one triggered join (200 instances)."""
    database = make_join_database(20_000, 2_000, degree=200, theta=0.0)
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key")
    schedule = QuerySchedule.for_plan(plan, 10)
    executor = Executor(MACHINE)
    execution = benchmark(executor.execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches


def test_bench_engine_pipelined_throughput(benchmark):
    """Wall-clock cost per pipelined tuple activation (2K activations)."""
    database = make_join_database(20_000, 2_000, degree=50, theta=0.0)
    plan = assoc_join_plan(database.entry_a, database.entry_b, "key", "key")
    schedule = QuerySchedule.for_plan(plan, 8)
    executor = Executor(MACHINE)
    execution = benchmark(executor.execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches


def _run_event_loop(mode, degree):
    """One event-loop throughput cell of the degree sweep.

    Degree 20 exercises the linear-scan selection path, degree 1500
    the ready index (READY_INDEX_MIN_INSTANCES sits between them), so
    together these benches watch both sides of the crossover.
    """
    database = make_join_database(20_000, 2_000, degree=degree, theta=0.0)
    builder = ideal_join_plan if mode == "triggered" else assoc_join_plan
    plan = builder(database.entry_a, database.entry_b, "key", "key")
    schedule = QuerySchedule.for_plan(plan, 10)
    return database, plan, schedule


def test_bench_event_loop_triggered_degree_20(benchmark):
    database, plan, schedule = _run_event_loop("triggered", 20)
    execution = benchmark(Executor(MACHINE).execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches


def test_bench_event_loop_triggered_degree_1500(benchmark):
    database, plan, schedule = _run_event_loop("triggered", 1500)
    execution = benchmark(Executor(MACHINE).execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches


def test_bench_event_loop_pipelined_degree_20(benchmark):
    database, plan, schedule = _run_event_loop("pipelined", 20)
    execution = benchmark(Executor(MACHINE).execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches


def test_bench_event_loop_pipelined_degree_1500(benchmark):
    database, plan, schedule = _run_event_loop("pipelined", 1500)
    execution = benchmark(Executor(MACHINE).execute, plan, schedule)
    assert execution.result_cardinality == database.expected_matches
