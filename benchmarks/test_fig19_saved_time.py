"""Figure 19: time saved by raising the degree under skew."""

from conftest import FULL, run_once

from repro.bench import fig19_saved_time


def test_fig19_saved_time(benchmark, record_result):
    if FULL:
        result = run_once(benchmark, fig19_saved_time.run)
    else:
        result = run_once(benchmark, lambda: fig19_saved_time.run(
            degrees=(40, 100, 250, 500, 1000, 1500)))
    record_result(result)

    saved = result.get("saved time")
    t_skewed = result.get("T(0.6)")
    t0 = result.notes["t0_at_min_degree"]

    # Raising the degree saves time at every higher degree.
    assert all(s > 0 for s in saved.values[1:])

    # The saving is substantial relative to the unskewed execution time
    # (the paper compares the saved time against T0 = 7.34 s).
    assert max(saved.values) > 0.5 * t0

    # Saved time comes from the skewed execution approaching the
    # unskewed one: T(0.6) at high degree is far below T(0.6) at the
    # lowest degree.
    assert min(t_skewed.values) < t_skewed.values[0] * 0.7
