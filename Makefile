# Developer entry points.  Everything assumes the source layout install
# (PYTHONPATH=src), no packages beyond the dev extras.

PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test bench perf perf-full perf-baseline trace-demo diagnose-demo \
	compare-demo concurrent-demo shared-demo report-demo chaos chaos-demo \
	monitor-demo profile-demo adaptive-demo serve-demo deprecation-gate

## Tier-1: the fast deterministic test suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

## Figure benchmarks (virtual-time experiments; writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Wall-clock perf-regression smoke: quick matrix vs committed baseline.
perf:
	$(PYTHON) -m pytest benchmarks/test_perf_baseline.py -m perf -q -s

## Full perf matrix against the committed baseline (slower, quieter box).
perf-full:
	$(PYTHON) -m repro.bench.perf_baseline --workload --faults \
		--check BENCH_engine.json

## Print a fresh full matrix (use when re-recording BENCH_engine.json).
perf-baseline:
	$(PYTHON) -m repro.bench.perf_baseline --workload --faults

## Chaos tests: the seeded fault-injection sweeps (pytest -m chaos).
chaos:
	$(PYTHON) -m pytest tests -m chaos -q -s

## Chaos demo: three seeded fault sweeps with invariant checks plus
## the pooled-vs-static graceful-degradation curve (exit 1 on any
## violation).
chaos-demo:
	$(PYTHON) -m repro chaos --seed 0 --seeds 3

## Concurrent-workload demo: four queries admitted into one shared
## simulation, with the admission/grant/finish timeline printed.
concurrent-demo:
	$(PYTHON) -m repro --concurrent 4

## Shared-work demo: eight queries (each shape twice) with identical
## subplans folded onto shared operators; prints the makespan gain of
## folding over private concurrent execution.
shared-demo:
	$(PYTHON) -m repro --concurrent 8 --shared

## Workload telemetry demo: the shared MPL-4 workload with the full
## WorkloadReport (tail latencies, admission, grants, pools, folds)
## rendered from the virtual-time metrics registry and query spans.
report-demo:
	$(PYTHON) -m repro run --concurrent 4 --shared --report

## Live-monitoring demo: the MPL-4 workload with the default SLO /
## straggler / admission / memory / retry-storm monitor rules armed;
## prints the structured alert table fired at virtual-time control
## points.
monitor-demo:
	$(PYTHON) -m repro run --concurrent 4 --monitors

## Self-profiler demo: the same workload under the engine's wall-clock
## profiler; prints the per-subsystem attribution table and gates the
## attributed share at 90%.
profile-demo:
	$(PYTHON) -m repro run --concurrent 4 --profile --profile-check 0.9

## Adaptive-scheduling demo: the MPL-4 workload under
## SchedulingPolicy(policy="adaptive") — wave-boundary grant re-splits
## and Random->LPT switches, with the decision log printed — plus the
## chaos adaptive sweep gate (adaptive strictly beats static on every
## slowed cell, bit-identical on the uniform one).
adaptive-demo:
	$(PYTHON) -m repro run --concurrent 4 --adaptive
	$(PYTHON) -m repro chaos --seed 0 --seeds 1

## Serving demo: seeded open-loop arrivals at 2x the measured
## saturation throughput through the overload-protection layer (EDF +
## bounded queue + load shedding); --check exits 1 unless conservation
## holds, shedding engaged, and goodput stays >= 80% of saturation.
serve-demo:
	$(PYTHON) -m repro serve --count 300 --check

## Deprecation gate: the tier-1 suite with DeprecationWarning promoted
## to an error, so no internal caller leans on a deprecated surface
## (e.g. WorkloadOptions(rebalance=...) instead of SchedulingPolicy).
## The one exemption is a third-party import-time warning
## (mypy_extensions via hypothesis' libcst extra) we cannot fix here.
deprecation-gate:
	$(PYTHON) -m pytest -x -q -W error::DeprecationWarning \
		-W "ignore:mypy_extensions.TypedDict is deprecated"

## Observed demo query: scheduler explain + Chrome trace (Perfetto) +
## JSONL event log + metrics snapshot into benchmarks/results/.
trace-demo:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro --explain \
		--trace-out benchmarks/results/trace_demo.json \
		--events-out benchmarks/results/trace_demo.jsonl \
		--metrics-out benchmarks/results/trace_demo.txt

## Diagnostics demo: critical path + imbalance doctor on the skewed
## AssocJoin, recorded into the run registry.
diagnose-demo:
	$(PYTHON) -m repro --diagnose --record --run-id diagnose-demo

## A/B demo: record Random vs LPT on the skewed AssocJoin, then
## compare the two registry records.
compare-demo:
	$(PYTHON) -m repro --diagnose --strategy random \
		--record --run-id demo-random > /dev/null
	$(PYTHON) -m repro --diagnose --strategy lpt \
		--record --run-id demo-lpt > /dev/null
	$(PYTHON) -m repro compare demo-random demo-lpt
