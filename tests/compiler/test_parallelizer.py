"""Plan-shape selection: IdealJoin vs AssocJoin vs filter-join."""

import pytest

from repro.bench.workloads import make_join_database, skewed_fragments
from repro.compiler import compile_query
from repro.errors import CompilationError
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec


@pytest.fixture
def cat():
    catalog = Catalog()
    make_join_database(400, 40, degree=8, theta=0.0, catalog=catalog)
    return catalog


@pytest.fixture
def cat_mixed():
    """A partitioned on key; C partitioned on payload (not its join key)."""
    catalog = Catalog()
    make_join_database(400, 40, degree=8, theta=0.0, catalog=catalog)
    relation_c, fragments_c = skewed_fragments("C", 60, 4, 0.0)
    catalog.register(relation_c, PartitioningSpec.on("payload", 4))
    return catalog


class TestSelectionShapes:
    def test_plain_selection(self, cat):
        compiled = compile_query("SELECT * FROM A WHERE key < 10", cat)
        assert "filter" in compiled.plan
        assert compiled.projection is None

    def test_projection_positions(self, cat):
        compiled = compile_query("SELECT payload, key FROM A", cat)
        assert compiled.projection == (1, 0)
        assert compiled.final_schema.names == ("payload", "key")

    def test_unknown_select_column_rejected(self, cat):
        with pytest.raises(CompilationError, match="not in"):
            compile_query("SELECT nope FROM A JOIN B ON A.key = B.key", cat)


class TestJoinShapes:
    def test_copartitioned_becomes_ideal(self, cat):
        compiled = compile_query("SELECT * FROM A JOIN B ON A.key = B.key", cat)
        assert "IdealJoin" in compiled.description
        assert compiled.plan.node("join").trigger_mode == "triggered"

    def test_mismatched_partitioning_becomes_assoc(self, cat_mixed):
        compiled = compile_query(
            "SELECT * FROM A JOIN C ON A.key = C.key", cat_mixed)
        assert "AssocJoin" in compiled.description
        assert "transmit" in compiled.plan
        # C (not partitioned on its join key) is the streamed side
        assert "C >> A" in compiled.description

    def test_filtered_stream_becomes_filter_join(self, cat):
        compiled = compile_query(
            "SELECT * FROM A JOIN B ON A.key = B.key WHERE B.payload < 5", cat)
        assert "FilterJoin" in compiled.description
        assert compiled.plan.node("join").trigger_mode == "pipelined"

    def test_filters_on_both_sides_rejected(self, cat):
        with pytest.raises(CompilationError, match="both"):
            compile_query(
                "SELECT * FROM A JOIN B ON A.key = B.key "
                "WHERE A.payload < 5 AND B.payload < 5", cat)

    def test_neither_partitioned_on_key_rejected(self, cat_mixed):
        with pytest.raises(CompilationError, match="neither"):
            compile_query(
                "SELECT * FROM A JOIN C ON A.payload = C.key", cat_mixed)

    def test_algorithm_flows_through(self, cat):
        compiled = compile_query("SELECT * FROM A JOIN B ON A.key = B.key",
                                 cat, algorithm="temp_index")
        assert compiled.plan.node("join").spec.algorithm == "temp_index"

    def test_copartitioned_with_filter_streams_filtered_side(self, cat):
        compiled = compile_query(
            "SELECT * FROM A JOIN B ON A.key = B.key WHERE A.payload < 5", cat)
        # A is filtered, so A streams and B is the stored side.
        assert "FilterJoin" in compiled.description
        assert "-> B" in compiled.description


class TestColumnMapping:
    def test_qualified_columns_on_join(self, cat):
        compiled = compile_query(
            "SELECT A.key, B.payload FROM A JOIN B ON A.key = B.key", cat)
        assert compiled.projection is not None
        assert len(compiled.projection) == 2

    def test_duplicate_column_selection(self, cat):
        compiled = compile_query(
            "SELECT key, key FROM A", cat)
        assert compiled.final_schema.names == ("key", "key_2")
