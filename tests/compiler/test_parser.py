"""SQL subset parser."""

import pytest

from repro.compiler.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
)
from repro.compiler.parser import parse
from repro.errors import CompilationError


class TestSelect:
    def test_select_star(self):
        tree = parse("SELECT * FROM A")
        assert isinstance(tree, LogicalProject)
        assert tree.columns == ()
        assert tree.child == LogicalScan("A")

    def test_select_columns(self):
        tree = parse("SELECT x, y FROM A")
        assert tree.columns == ("x", "y")

    def test_qualified_columns(self):
        tree = parse("SELECT A.x, B.y FROM A JOIN B ON A.k = B.j")
        assert tree.columns == ("A.x", "B.y")

    def test_case_insensitive_keywords(self):
        tree = parse("select * from A where x < 5")
        assert isinstance(tree.child, LogicalFilter)


class TestWhere:
    def test_single_comparison(self):
        tree = parse("SELECT * FROM A WHERE x < 5")
        comparison = tree.child.comparisons[0]
        assert (comparison.attribute, comparison.op, comparison.value) == ("x", "<", 5)

    def test_conjunction(self):
        tree = parse("SELECT * FROM A WHERE x < 5 AND y = 3")
        assert len(tree.child.comparisons) == 2

    def test_float_constant(self):
        tree = parse("SELECT * FROM A WHERE x >= 1.5")
        assert tree.child.comparisons[0].value == 1.5

    def test_string_constant(self):
        tree = parse("SELECT * FROM A WHERE name = 'paris'")
        assert tree.child.comparisons[0].value == "paris"

    def test_negative_number(self):
        tree = parse("SELECT * FROM A WHERE x > -3")
        assert tree.child.comparisons[0].value == -3

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "=", "!=", "<>"])
    def test_all_operators(self, op):
        tree = parse(f"SELECT * FROM A WHERE x {op} 1")
        assert tree.child.comparisons[0].op == op


class TestJoin:
    def test_join_structure(self):
        tree = parse("SELECT * FROM A JOIN B ON A.k = B.j")
        join = tree.child
        assert isinstance(join, LogicalJoin)
        assert join.left == LogicalScan("A")
        assert join.right == LogicalScan("B")
        assert join.left_key == "A.k"
        assert join.right_key == "B.j"

    def test_join_with_where(self):
        tree = parse("SELECT * FROM A JOIN B ON A.k = B.j WHERE A.x < 5")
        assert isinstance(tree.child, LogicalFilter)
        assert isinstance(tree.child.child, LogicalJoin)

    def test_unqualified_join_keys(self):
        tree = parse("SELECT * FROM A JOIN B ON k = j")
        assert tree.child.left_key == "k"


class TestAggregates:
    def test_count_star(self):
        from repro.compiler.logical import LogicalAggregate
        tree = parse("SELECT COUNT(*) FROM A")
        assert isinstance(tree, LogicalAggregate)
        assert tree.group_by is None
        assert tree.aggregates[0].function == "count"
        assert tree.aggregates[0].attribute is None

    def test_group_by(self):
        tree = parse("SELECT g, COUNT(*), SUM(x) FROM A GROUP BY g")
        assert tree.group_by == "g"
        assert [a.function for a in tree.aggregates] == ["count", "sum"]
        assert tree.select_items[0] == "g"

    def test_aggregate_with_where(self):
        from repro.compiler.logical import LogicalFilter
        tree = parse("SELECT AVG(x) FROM A WHERE y > 2")
        assert isinstance(tree.child, LogicalFilter)

    def test_sum_star_rejected(self):
        with pytest.raises(CompilationError, match="COUNT"):
            parse("SELECT SUM(*) FROM A")

    def test_missing_close_paren(self):
        with pytest.raises(CompilationError, match=r"\)"):
            parse("SELECT SUM(x FROM A")

    def test_column_named_like_function(self):
        from repro.compiler.logical import LogicalProject
        tree = parse("SELECT count FROM A")
        assert isinstance(tree, LogicalProject)
        assert tree.columns == ("count",)

    def test_non_group_column_rejected(self):
        with pytest.raises(CompilationError, match="GROUP BY attribute"):
            parse("SELECT y, COUNT(*) FROM A GROUP BY g")

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(CompilationError, match="without aggregates"):
            parse("SELECT g FROM A GROUP BY g")


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(CompilationError):
            parse("FROM A")

    def test_missing_from(self):
        with pytest.raises(CompilationError):
            parse("SELECT *")

    def test_join_requires_equality(self):
        with pytest.raises(CompilationError, match="'='"):
            parse("SELECT * FROM A JOIN B ON A.k < B.j")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(CompilationError, match="trailing"):
            parse("SELECT * FROM A ORDER")

    def test_group_without_by_rejected(self):
        with pytest.raises(CompilationError):
            parse("SELECT COUNT(*) FROM A GROUP")
        with pytest.raises(CompilationError, match="BY"):
            parse("SELECT COUNT(*) FROM A GROUP key")

    def test_bad_comparison_value(self):
        with pytest.raises(CompilationError):
            parse("SELECT * FROM A WHERE x <")

    def test_untokenizable_input(self):
        with pytest.raises(CompilationError):
            parse("SELECT * FROM A WHERE x < #!")

    def test_empty_query(self):
        with pytest.raises(CompilationError):
            parse("")
