"""Name resolution, filter pushdown, selectivity defaults."""

import pytest

from repro.bench.workloads import make_join_database
from repro.compiler.optimizer import (
    EQ_SELECTIVITY,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    default_selectivity,
    normalize,
)
from repro.compiler.parser import parse
from repro.errors import CompilationError
from repro.storage.catalog import Catalog


@pytest.fixture
def cat():
    catalog = Catalog()
    make_join_database(400, 40, degree=8, theta=0.0, catalog=catalog)
    return catalog


class TestSelectivities:
    def test_defaults(self):
        assert default_selectivity("=") == EQ_SELECTIVITY
        assert default_selectivity("!=") == NEQ_SELECTIVITY
        assert default_selectivity("<") == RANGE_SELECTIVITY


class TestSelectionNormalization:
    def test_plain_scan(self, cat):
        query = normalize(parse("SELECT * FROM A"), cat)
        assert query.left.name == "A"
        assert not query.is_join
        assert not query.left.filtered

    def test_filter_pushed_to_scan(self, cat):
        query = normalize(parse("SELECT * FROM A WHERE key < 5"), cat)
        assert query.left.comparisons[0].attribute == "key"

    def test_unknown_relation_rejected(self, cat):
        with pytest.raises(CompilationError):
            normalize(parse("SELECT * FROM Ghost"), cat)

    def test_unknown_attribute_rejected(self, cat):
        with pytest.raises(CompilationError, match="not found"):
            normalize(parse("SELECT * FROM A WHERE ghost = 1"), cat)

    def test_combined_selectivity(self, cat):
        query = normalize(parse("SELECT * FROM A WHERE key < 5 AND payload = 1"),
                          cat)
        assert query.left.selectivity() == pytest.approx(
            RANGE_SELECTIVITY * EQ_SELECTIVITY)


class TestJoinNormalization:
    def test_keys_resolved_per_side(self, cat):
        query = normalize(parse("SELECT * FROM A JOIN B ON A.key = B.key"), cat)
        assert query.left.name == "A"
        assert query.right.name == "B"
        assert query.left_key == "key"
        assert query.right_key == "key"

    def test_backwards_on_clause_swapped(self, cat):
        query = normalize(parse("SELECT * FROM A JOIN B ON B.key = A.key"), cat)
        assert query.left.name == "A"
        assert query.left_key == "key"
        assert query.right_key == "key"

    def test_filters_routed_by_owner(self, cat):
        query = normalize(parse(
            "SELECT * FROM A JOIN B ON A.key = B.key "
            "WHERE A.payload < 5 AND B.payload > 1"), cat)
        assert query.left.comparisons[0].attribute == "payload"
        assert query.right.comparisons[0].attribute == "payload"

    def test_ambiguous_bare_attribute_rejected(self, cat):
        with pytest.raises(CompilationError, match="ambiguous"):
            normalize(parse(
                "SELECT * FROM A JOIN B ON A.key = B.key WHERE payload < 5"),
                cat)

    def test_keys_same_relation_rejected(self, cat):
        with pytest.raises(CompilationError):
            normalize(parse("SELECT * FROM A JOIN B ON A.key = A.payload"), cat)

    def test_qualifier_not_in_from_rejected(self, cat):
        with pytest.raises(CompilationError, match="not in FROM"):
            normalize(parse("SELECT * FROM A JOIN B ON C.key = B.key"), cat)
