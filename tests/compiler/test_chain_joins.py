"""N-way left-deep join chains through SQL."""

import pytest

from repro.bench.workloads import skewed_fragments
from repro.core.database import DBS3
from repro.errors import CompilationError
from repro.storage.partitioning import PartitioningSpec


@pytest.fixture
def db():
    database = DBS3(processors=16)
    for name, card, degree in (("A", 800, 10), ("B", 200, 10),
                               ("C", 300, 8), ("D", 150, 6)):
        relation, fragments = skewed_fragments(name, card, degree, 0.0)
        database.catalog.register_fragments(
            relation, PartitioningSpec.on("key", degree), fragments)
    return database


def _reference(db, names):
    result = db.table(names[0]).relation
    for name in names[1:]:
        result = result.join(db.table(name).relation, "key", "key")
    return sorted(result.rows)


class TestChainCompilation:
    def test_three_way_plan_shape(self, db):
        compiled = db.compile(
            "SELECT * FROM A JOIN B ON A.key = B.key "
            "JOIN C ON A.key = C.key")
        assert "ChainJoin" in compiled.description
        assert "2 phases" in compiled.description
        names = {node.name for node in compiled.plan.nodes}
        assert names == {"join1", "store1", "join2"}

    def test_four_way_has_three_phases(self, db):
        compiled = db.compile(
            "SELECT * FROM A JOIN B ON A.key = B.key "
            "JOIN C ON A.key = C.key JOIN D ON C.key = D.key")
        assert "3 phases" in compiled.description
        assert len(compiled.plan.chain_waves()) == 3

    def test_on_clause_order_is_flexible(self, db):
        compiled = db.compile(
            "SELECT * FROM A JOIN B ON A.key = B.key "
            "JOIN C ON C.key = B.key")
        assert "ChainJoin" in compiled.description

    def test_step_must_reference_earlier_relation(self, db):
        with pytest.raises(CompilationError, match="earlier relation"):
            db.compile("SELECT * FROM A JOIN B ON A.key = B.key "
                       "JOIN C ON C.key = C.payload")

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(CompilationError, match="twice"):
            db.compile("SELECT * FROM A JOIN B ON A.key = B.key "
                       "JOIN B ON A.key = B.key")

    def test_where_on_chain_rejected(self, db):
        with pytest.raises(CompilationError, match="WHERE"):
            db.compile("SELECT * FROM A JOIN B ON A.key = B.key "
                       "JOIN C ON A.key = C.key WHERE A.payload < 5")

    def test_first_pair_must_be_copartitioned(self, db):
        relation, fragments = skewed_fragments("E", 100, 4, 0.0)
        db.catalog.register_fragments(relation,
                                      PartitioningSpec.on("payload", 4),
                                      fragments)
        with pytest.raises(CompilationError, match="co-partitioned"):
            db.compile("SELECT * FROM A JOIN E ON A.key = E.key "
                       "JOIN C ON A.key = C.key")


class TestChainExecution:
    def test_three_way_matches_reference(self, db):
        result = db.query("SELECT * FROM A JOIN B ON A.key = B.key "
                          "JOIN C ON A.key = C.key", threads=8)
        assert sorted(result.rows) == _reference(db, ["A", "B", "C"])

    def test_four_way_matches_reference(self, db):
        result = db.query(
            "SELECT * FROM A JOIN B ON A.key = B.key "
            "JOIN C ON A.key = C.key JOIN D ON C.key = D.key", threads=8)
        assert sorted(result.rows) == _reference(db, ["A", "B", "C", "D"])

    def test_projection_across_chain(self, db):
        result = db.query(
            "SELECT A.payload, D.payload FROM A JOIN B ON A.key = B.key "
            "JOIN C ON A.key = C.key JOIN D ON C.key = D.key", threads=6)
        reference = {(row[1], row[7]) for row in
                     _reference(db, ["A", "B", "C", "D"])}
        assert set(result.rows) == reference

    def test_phases_run_in_waves(self, db):
        result = db.query("SELECT * FROM A JOIN B ON A.key = B.key "
                          "JOIN C ON A.key = C.key", threads=6)
        execution = result.execution
        assert (execution.operation("join2").started_at
                >= execution.operation("store1").finished_at)

    def test_temp_index_algorithm(self, db):
        result = db.query("SELECT * FROM A JOIN B ON A.key = B.key "
                          "JOIN C ON A.key = C.key", threads=6,
                          algorithm="temp_index")
        assert sorted(result.rows) == _reference(db, ["A", "B", "C"])
