"""Measurement repetition utilities (paper: six runs, averaged)."""

import pytest

from repro.bench.repeat import Measurement, measure_series, repeat
from repro.errors import ReproError


class TestMeasurement:
    def test_mean_min_max(self):
        m = Measurement((1.0, 2.0, 3.0))
        assert m.mean == 2.0
        assert m.minimum == 1.0
        assert m.maximum == 3.0

    def test_std(self):
        m = Measurement((2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0))
        assert m.std == pytest.approx(2.138, rel=1e-3)

    def test_single_sample_std_zero(self):
        assert Measurement((5.0,)).std == 0.0

    def test_relative_spread(self):
        assert Measurement((9.0, 11.0)).relative_spread == pytest.approx(0.2)

    def test_confidence_halfwidth(self):
        m = Measurement((1.0, 2.0, 3.0, 4.0))
        assert m.confidence_halfwidth() == pytest.approx(
            1.96 * m.std / 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Measurement(())


class TestRepeat:
    def test_default_paper_repetitions(self):
        calls = []
        m = repeat(lambda seed: calls.append(seed) or float(seed))
        assert calls == [0, 1, 2, 3, 4, 5]
        assert len(m.samples) == 6

    def test_explicit_seeds(self):
        m = repeat(lambda seed: float(seed), seeds=(7, 9))
        assert m.samples == (7.0, 9.0)

    def test_bad_repetitions(self):
        with pytest.raises(ReproError):
            repeat(lambda seed: 1.0, repetitions=0)

    def test_engine_seed_variation_bounded(self):
        """Repeated skewed Random executions vary, but modestly."""
        from repro.bench.workloads import make_join_database
        from repro.engine.executor import ExecutionOptions, Executor, QuerySchedule
        from repro.lera.plans import ideal_join_plan
        from repro.machine.machine import Machine
        database = make_join_database(2000, 200, degree=20, theta=0.8)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        machine = Machine.uniform(processors=8)

        def run(seed):
            executor = Executor(machine, ExecutionOptions(seed=seed))
            return executor.execute(
                plan, QuerySchedule.for_plan(plan, 4)).response_time

        m = repeat(run)
        assert m.std >= 0.0
        assert m.relative_spread < 0.5


class TestMeasureSeries:
    def test_one_measurement_per_point(self):
        series = measure_series(lambda x, seed: x * 10.0 + seed,
                                x_values=(1, 2, 3), repetitions=2)
        assert len(series) == 3
        assert series[0].samples == (10.0, 11.0)
        assert series[2].samples == (30.0, 31.0)
