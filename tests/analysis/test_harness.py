"""Experiment-harness utilities (series, tables, crossovers)."""

import pytest

from repro.bench.harness import ExperimentResult, Series, crossover_index
from repro.errors import ReproError


def _result():
    result = ExperimentResult("figX", "demo", "x", (1.0, 2.0, 3.0))
    result.add_series("a", [10.0, 9.0, 8.0])
    result.add_series("b", [9.0, 9.5, 10.0])
    return result


class TestSeries:
    def test_spread(self):
        series = Series("s", (10.0, 12.0, 11.0))
        assert series.spread() == pytest.approx(0.2)

    def test_spread_rejects_zero(self):
        with pytest.raises(ReproError):
            Series("s", (0.0, 1.0)).spread()

    def test_argmin_argmax(self):
        series = Series("s", (3.0, 1.0, 2.0))
        assert series.argmin() == 1
        assert series.argmax() == 0

    def test_peak_and_ceiling(self):
        series = Series("s", (5.0, 5.9, 6.0, 5.95))
        assert series.peak == 6.0
        assert 5.9 <= series.ceiling() <= 6.0


class TestExperimentResult:
    def test_add_series_length_checked(self):
        result = ExperimentResult("f", "t", "x", (1.0, 2.0))
        with pytest.raises(ReproError):
            result.add_series("bad", [1.0])

    def test_get_by_label(self):
        result = _result()
        assert result.get("a").values == (10.0, 9.0, 8.0)

    def test_get_unknown_raises(self):
        with pytest.raises(ReproError, match="no series"):
            _result().get("zzz")

    def test_render_contains_everything(self):
        result = _result()
        result.notes["k"] = "v"
        text = result.render()
        assert "figX" in text
        assert "a" in text and "b" in text
        assert "note: k = v" in text
        # one row per x value plus header, separator, title, note
        assert len(text.splitlines()) == 3 + 3 + 1

    def test_render_integer_formatting(self):
        result = ExperimentResult("f", "t", "n", (10.0,))
        result.add_series("v", [3.0])
        assert "10" in result.render()
        assert "10.000" not in result.render()


class TestCrossover:
    def test_finds_crossover(self):
        a = Series("a", (1.0, 2.0, 5.0))
        b = Series("b", (3.0, 3.0, 3.0))
        assert crossover_index(a, b) == 2

    def test_no_crossover(self):
        a = Series("a", (1.0, 1.0))
        b = Series("b", (3.0, 3.0))
        assert crossover_index(a, b) is None
