"""Unit tests of the perf-regression harness' comparison logic.

The wall-clock matrix itself runs under the ``perf`` marker
(benchmarks/test_perf_baseline.py); here only the pure comparison and
rendering helpers are exercised, on synthetic matrices, so tier-1
covers the harness without timing anything.
"""

import json
import pathlib

from repro.bench.perf_baseline import (
    REGRESSION_THRESHOLD,
    cell_key,
    compare_matrices,
    render,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent


def _matrix(min_s=1.0, virtual=5.0, rows=100):
    cell = {
        "mode": "triggered", "degree": 200,
        "mean_s": min_s, "std_s": 0.0, "min_s": min_s,
        "runs": [min_s],
        "result_rows": rows, "virtual_response_s": virtual,
    }
    return {"workload": {}, "cells": {"triggered@200": dict(cell)}}


class TestCompareMatrices:
    def test_identical_matrices_pass(self):
        assert compare_matrices(_matrix(), _matrix()) == []

    def test_faster_run_passes(self):
        assert compare_matrices(_matrix(min_s=1.0), _matrix(min_s=0.5)) == []

    def test_slowdown_within_threshold_passes(self):
        current = _matrix(min_s=1.0 + REGRESSION_THRESHOLD - 0.01)
        assert compare_matrices(_matrix(min_s=1.0), current) == []

    def test_slowdown_beyond_threshold_flagged(self):
        problems = compare_matrices(_matrix(min_s=1.0), _matrix(min_s=1.5))
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_custom_threshold(self):
        assert compare_matrices(_matrix(min_s=1.0), _matrix(min_s=1.5),
                                threshold=0.6) == []

    def test_absolute_slack_shields_millisecond_cells(self):
        # 0.002s -> 0.006s is a 3x "regression" but within timer jitter.
        assert compare_matrices(_matrix(min_s=0.002),
                                _matrix(min_s=0.006)) == []
        problems = compare_matrices(_matrix(min_s=0.002),
                                    _matrix(min_s=0.006), abs_slack_s=0.0)
        assert len(problems) == 1

    def test_virtual_time_drift_always_flagged(self):
        problems = compare_matrices(_matrix(virtual=5.0),
                                    _matrix(virtual=5.0000001))
        assert any("virtual response time" in p for p in problems)

    def test_cardinality_drift_always_flagged(self):
        problems = compare_matrices(_matrix(rows=100), _matrix(rows=99))
        assert any("cardinality" in p for p in problems)

    def test_missing_cell_flagged(self):
        current = _matrix()
        current["cells"] = {}
        problems = compare_matrices(_matrix(), current)
        assert problems == ["triggered@200: missing from current run"]


class TestHelpers:
    def test_cell_key_is_stable(self):
        assert cell_key("pipelined", 1500) == "pipelined@1500"

    def test_render_mentions_every_cell(self):
        assert "triggered@200" in render(_matrix())


class TestCommittedBaseline:
    def test_bench_engine_json_is_well_formed(self):
        doc = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        assert doc["schema"] == 1
        for scale in ("full", "quick"):
            for side in ("before", "after"):
                cells = doc[scale][side]["cells"]
                assert set(cells) == {
                    cell_key(m, d)
                    for m in ("triggered", "pipelined")
                    for d in (20, 200, 1500)}
                for cell in cells.values():
                    assert cell["min_s"] > 0
                    assert cell["result_rows"] > 0
