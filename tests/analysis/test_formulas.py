"""Section 4.1 analytical model, including the paper's worked examples."""

import math

import pytest

from repro.analysis.formulas import (
    OperatorProfile,
    ideal_time,
    nmax,
    nmax_from_costs,
    overhead_from_times,
    skew_overhead_bound,
    worst_time,
)
from repro.errors import ReproError
from repro.storage.skew import zipf_cardinalities


class TestEquations:
    def test_ideal_time_is_work_over_threads(self):
        assert ideal_time(100, 2.0, 10) == 20.0

    def test_worst_time_adds_longest_activation(self):
        # (a*P - Pmax)/n + Pmax
        assert worst_time(10, 1.0, 4.0, 3) == (10 - 4) / 3 + 4

    def test_worst_at_one_thread_is_total(self):
        assert worst_time(10, 1.0, 4.0, 1) == 10.0

    def test_v_bound_formula(self):
        # v <= (Pmax/P) * (n-1) / a
        assert skew_overhead_bound(100, 1.0, 5.0, 11) == 5.0 * 10 / 100

    def test_v_bound_single_thread_is_zero(self):
        assert skew_overhead_bound(100, 1.0, 5.0, 1) == 0.0

    def test_paper_worked_example(self):
        """Section 5.5 footnote: Zipf=1, 200 buckets gives Pmax = 34 P;
        with 70 threads and 20000 activations, v = 34*69/20000 = 0.117."""
        v = skew_overhead_bound(20_000, 1.0, 34.0, 70)
        assert math.isclose(v, 0.117, rel_tol=0.01)

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ReproError):
            ideal_time(10, 1.0, 0)
        with pytest.raises(ReproError):
            skew_overhead_bound(10, 1.0, 1.0, 0)

    def test_overhead_from_times(self):
        assert overhead_from_times(12.0, 10.0) == pytest.approx(0.2)

    def test_overhead_rejects_zero_ideal(self):
        with pytest.raises(ReproError):
            overhead_from_times(1.0, 0.0)


class TestNmax:
    def test_formula(self):
        assert nmax(100, 1.0, 25.0) == 4.0

    def test_infinite_when_no_peak(self):
        assert nmax(10, 0.0, 0.0) == math.inf

    def test_from_costs(self):
        assert nmax_from_costs([1.0, 1.0, 2.0]) == 2.0

    def test_from_empty_costs(self):
        assert nmax_from_costs([]) == math.inf

    def test_paper_nmax_from_zipf_fragments(self):
        """nmax = 6 (Zipf 1), 19 (0.6), 40 (0.4) with 200 fragments."""
        for theta, expected in ((1.0, 6), (0.6, 19), (0.4, 40)):
            costs = [float(c) for c in zipf_cardinalities(200_000, 200, theta)]
            assert abs(nmax_from_costs(costs) - expected) / expected < 0.15


class TestOperatorProfile:
    def test_aggregates(self):
        profile = OperatorProfile.of([1.0, 3.0, 2.0])
        assert profile.activations == 3
        assert profile.total_cost == 6.0
        assert profile.mean_cost == 2.0
        assert profile.max_cost == 3.0
        assert profile.skew_factor == 1.5

    def test_empty_profile(self):
        profile = OperatorProfile.of([])
        assert profile.mean_cost == 0.0
        assert profile.skew_factor == 1.0
        assert profile.nmax == math.inf

    def test_times_consistent_with_functions(self):
        profile = OperatorProfile.of([1.0, 2.0, 3.0])
        assert profile.ideal_time(2) == ideal_time(3, 2.0, 2)
        assert profile.worst_time(2) == worst_time(3, 2.0, 3.0, 2)
        assert profile.v_bound(2) == skew_overhead_bound(3, 2.0, 3.0, 2)

    def test_lower_bound_is_max_of_ideal_and_pmax(self):
        profile = OperatorProfile.of([1.0, 1.0, 10.0])
        assert profile.lower_bound_time(12) == 10.0
        assert profile.lower_bound_time(1) == 12.0

    def test_worst_never_below_ideal(self):
        profile = OperatorProfile.of([0.5, 1.5, 2.0, 4.0])
        for threads in range(1, 10):
            assert profile.worst_time(threads) >= profile.ideal_time(threads) - 1e-12
