"""Speed-up curves and ceilings."""

import pytest

from repro.analysis.formulas import OperatorProfile
from repro.analysis.speedup import (
    SpeedupCurve,
    skew_limited_speedup,
    speedup,
    theoretical_speedup,
)
from repro.errors import ReproError


class TestBasics:
    def test_speedup(self):
        assert speedup(100.0, 10.0) == 10.0

    def test_speedup_rejects_zero(self):
        with pytest.raises(ReproError):
            speedup(1.0, 0.0)

    def test_theoretical_linear_then_flat(self):
        assert theoretical_speedup(10, 70) == 10
        assert theoretical_speedup(70, 70) == 70
        assert theoretical_speedup(100, 70) == 70

    def test_theoretical_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            theoretical_speedup(0, 70)
        with pytest.raises(ReproError):
            theoretical_speedup(10, 0)


class TestSkewLimited:
    def test_uniform_profile_scales_linearly(self):
        profile = OperatorProfile.of([1.0] * 100)
        assert skew_limited_speedup(profile, 10, 70) == pytest.approx(10.0)

    def test_skewed_profile_hits_nmax(self):
        profile = OperatorProfile.of([1.0] * 99 + [101.0])
        # total = 200, Pmax = 101 -> nmax ~= 1.98
        assert skew_limited_speedup(profile, 70, 70) == pytest.approx(200 / 101)

    def test_processor_cap_applies(self):
        profile = OperatorProfile.of([1.0] * 1000)
        assert skew_limited_speedup(profile, 100, 70) == pytest.approx(70.0)


class TestSpeedupCurve:
    def test_measure_requires_one_thread_start(self):
        with pytest.raises(ReproError):
            SpeedupCurve.measure([2, 4], [10.0, 5.0])

    def test_measure_normalizes(self):
        curve = SpeedupCurve.measure([1, 2, 4], [100.0, 50.0, 25.0])
        assert curve.speedups == (1.0, 2.0, 4.0)

    def test_from_sequential(self):
        curve = SpeedupCurve.from_sequential(100.0, [10, 20], [10.0, 5.0])
        assert curve.speedups == (10.0, 20.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            SpeedupCurve((1, 2), (1.0,))

    def test_peak(self):
        curve = SpeedupCurve((10, 20, 30), (9.0, 18.0, 17.0))
        assert curve.peak == 18.0
        assert curve.peak_threads == 20

    def test_ceiling_averages_plateau(self):
        curve = SpeedupCurve((10, 20, 30, 40), (5.0, 5.9, 6.0, 5.95))
        assert 5.9 <= curve.ceiling() <= 6.0

    def test_efficiency(self):
        curve = SpeedupCurve((10, 20), (9.0, 16.0))
        assert curve.efficiency_at(20) == pytest.approx(0.8)
