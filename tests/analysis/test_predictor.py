"""Analytical predictor vs simulated executions."""

import pytest

from repro.analysis.predictor import predict
from repro.bench.workloads import make_join_database
from repro.engine.executor import Executor, QuerySchedule
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler

MACHINE = Machine.uniform(processors=16)


def _predict_and_measure(plan, threads, strategy=None):
    schedule = AdaptiveScheduler(MACHINE).schedule(plan, threads)
    if strategy is not None:
        schedule = schedule.with_strategy("join", strategy)
    prediction = predict(plan, schedule, MACHINE)
    execution = Executor(MACHINE).execute(plan, schedule)
    return prediction, execution


class TestBandStructure:
    def test_band_ordering(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        prediction, _ = _predict_and_measure(plan, 4)
        assert prediction.startup_time <= prediction.lower_bound
        assert prediction.lower_bound <= prediction.worst_time
        assert prediction.ideal_time <= prediction.worst_time

    def test_operator_predictions_exposed(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        prediction, _ = _predict_and_measure(plan, 4)
        assert set(prediction.operators) == {"transmit", "join"}
        join = prediction.operators["join"]
        assert join.activations == join_db.entry_b.cardinality

    def test_nmax_from_estimates(self, skewed_join_db):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        prediction, _ = _predict_and_measure(plan, 4)
        stats = skewed_join_db.entry_a.statistics
        expected = stats.total / stats.largest
        assert prediction.operators["join"].nmax == pytest.approx(
            expected, rel=0.05)


class TestAgainstSimulation:
    @pytest.mark.parametrize("theta", [0.0, 0.6, 1.0])
    @pytest.mark.parametrize("threads", [2, 8])
    def test_ideal_join_inside_band(self, theta, threads):
        database = make_join_database(5000, 500, degree=25, theta=theta)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        prediction, execution = _predict_and_measure(plan, threads,
                                                     strategy="lpt")
        assert prediction.contains(execution.response_time), \
            (f"measured {execution.response_time:.3f} outside "
             f"[{prediction.lower_bound:.3f}, {prediction.worst_time:.3f}]")

    @pytest.mark.parametrize("theta", [0.0, 1.0])
    def test_assoc_join_inside_band(self, theta):
        database = make_join_database(5000, 500, degree=25, theta=theta)
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        prediction, execution = _predict_and_measure(plan, 6)
        assert prediction.contains(execution.response_time, slack=0.15)

    def test_skewed_measured_hits_lower_bound(self):
        """With LPT, a heavily skewed triggered join runs at its Pmax
        lower bound — the predictor should pinpoint it."""
        database = make_join_database(20_000, 2000, degree=50, theta=1.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        prediction, execution = _predict_and_measure(plan, 10, strategy="lpt")
        assert execution.response_time == pytest.approx(
            prediction.lower_bound, rel=0.05)

    def test_startup_predicted_exactly(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        prediction, execution = _predict_and_measure(plan, 4)
        assert prediction.startup_time == pytest.approx(
            execution.startup_time)

    def test_two_wave_plan_predicted(self):
        from repro.bench.workloads import skewed_fragments
        from repro.lera.plans import two_phase_join_plan
        from repro.storage.catalog import Catalog
        from repro.storage.partitioning import PartitioningSpec
        database = make_join_database(2000, 200, degree=10, theta=0.0)
        relation_c, fragments_c = skewed_fragments("C", 300, 8, 0.0)
        entry_c = Catalog().register_fragments(
            relation_c, PartitioningSpec.on("key", 8), fragments_c)
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key",
                                   expected_intermediate=200)
        prediction, execution = _predict_and_measure(plan, 6)
        # estimates of the materialized intermediate are approximate;
        # a generous band still has to hold
        assert execution.response_time <= prediction.worst_time * 1.5
        assert execution.response_time >= prediction.startup_time
