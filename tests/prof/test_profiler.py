"""The engine self-profiler: attribution math, the ambient ``profile()``
context manager, and the live-run coverage contract."""

import pytest

from repro import (
    DBS3,
    ObservabilityOptions,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.errors import ReproError
from repro.prof import EngineProfiler, active_profiler, profile


class TestAttribution:
    def _profiled(self):
        profiler = EngineProfiler()
        profiler.start()
        profiler.enter("sim")
        profiler.enter("dbfunc")
        profiler.exit()
        profiler.enter("deliver")
        profiler.exit()
        profiler.exit()
        profiler.enter("assemble")
        profiler.exit()
        profiler.stop()
        return profiler

    def test_nodes_keyed_by_path(self):
        profiler = self._profiled()
        paths = set(profiler.nodes)
        assert paths == {("sim",), ("sim", "dbfunc"),
                         ("sim", "deliver"), ("assemble",)}

    def test_self_time_excludes_children(self):
        profiler = self._profiled()
        sim_calls, sim_self, sim_total = profiler.nodes[("sim",)]
        child_total = (profiler.nodes[("sim", "dbfunc")][2]
                       + profiler.nodes[("sim", "deliver")][2])
        assert sim_calls == 1
        assert sim_self == sim_total - child_total
        # Self times are double-count-free: their sum is the
        # attributed time, which can never exceed the wall.
        assert profiler.attributed_ns() <= profiler.wall_ns

    def test_coverage_between_zero_and_one(self):
        profiler = self._profiled()
        assert 0.0 < profiler.coverage() <= 1.0
        assert EngineProfiler().coverage() == 0.0

    def test_section_context_manager(self):
        profiler = EngineProfiler()
        profiler.start()
        with profiler.section("sim"):
            with profiler.section("fault"):
                pass
        profiler.stop()
        assert ("sim", "fault") in profiler.nodes

    def test_folded_output(self):
        folded = self._profiled().folded()
        lines = dict(line.rsplit(" ", 1) for line in folded.splitlines())
        assert "sim;dbfunc" in lines
        assert all(int(v) > 0 for v in lines.values())

    def test_render_mentions_every_section(self):
        rendered = self._profiled().render()
        assert "sim;dbfunc" in rendered
        assert "attributed" in rendered

    def test_json_round_trip(self):
        profiler = self._profiled()
        again = EngineProfiler.from_json(profiler.to_json())
        assert again.nodes == profiler.nodes
        assert again.wall_ns == profiler.wall_ns
        assert again.coverage() == pytest.approx(profiler.coverage())


class TestAmbientProfile:
    def test_profile_installs_and_restores(self):
        assert active_profiler() is None
        with profile() as profiler:
            assert active_profiler() is profiler
        assert active_profiler() is None
        assert profiler.wall_ns > 0

    def test_profile_blocks_do_not_nest(self):
        with profile():
            with pytest.raises(ReproError, match="do not nest"):
                with profile():
                    pass  # pragma: no cover - never reached
        assert active_profiler() is None


# -- the live run -------------------------------------------------------------

def _run(options: WorkloadOptions | None = None):
    db = DBS3(processors=24)
    db.create_table(generate_wisconsin("A", 800, seed=1), "unique1",
                    degree=8)
    db.create_table(generate_wisconsin("B", 80, seed=2), "unique1",
                    degree=8)
    session = db.session(options=options)
    session.submit("SELECT * FROM A JOIN B ON A.unique1 = B.unique1")
    return session.run()


class TestProfiledRun:
    def test_profiled_workload_attributes_most_of_the_wall(self):
        result = _run(WorkloadOptions(
            observability=ObservabilityOptions(profile=True)))
        assert result.profile is not None
        assert result.profile.coverage() >= 0.9
        paths = {";".join(path) for path in result.profile.nodes}
        assert "sim" in paths
        assert "sim;dbfunc" in paths

    def test_unprofiled_run_carries_no_profile(self):
        assert _run().profile is None

    def test_profiler_does_not_move_virtual_time(self):
        bare = _run()
        profiled = _run(WorkloadOptions(
            observability=ObservabilityOptions(profile=True)))
        assert profiled.makespan == bare.makespan

    def test_ambient_profiler_observes_the_run(self):
        with profile() as profiler:
            result = _run()
        # The engine instruments into the ambient profiler without
        # owning it: the result exposes no profile (profile=False),
        # but the engine sections land in the ambient call tree.
        assert result.profile is None
        assert any(path and path[0] == "sim" for path in profiler.nodes)
