"""End-to-end aggregation: engine, SQL, correctness vs reference."""

import collections

import pytest

from repro.core.database import DBS3
from repro.engine.executor import Executor, QuerySchedule
from repro.errors import CompilationError
from repro.lera.aggregates import AggregateExpr
from repro.lera.plans import aggregate_plan
from repro.lera.predicates import attribute_predicate
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "grp", "val")
ROWS = [(i, i % 7, i * 3) for i in range(700)]


@pytest.fixture
def entry(catalog):
    return catalog.register(Relation("R", SCHEMA, ROWS),
                            PartitioningSpec.on("key", 10))


@pytest.fixture
def db():
    database = DBS3(processors=8)
    database.create_table(Relation("R", SCHEMA, ROWS), "key", 10)
    return database


def _reference_groups():
    groups = collections.defaultdict(list)
    for _, grp, val in ROWS:
        groups[grp].append(val)
    return groups


class TestEngineAggregation:
    def test_grouped_counts(self, entry):
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 4))
        assert sorted(execution.result_rows) == [(g, 100) for g in range(7)]

    def test_all_functions(self, entry):
        plan = aggregate_plan(
            entry,
            (AggregateExpr("count"), AggregateExpr("sum", "val"),
             AggregateExpr("min", "val"), AggregateExpr("max", "val"),
             AggregateExpr("avg", "val")),
            group_by="grp")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 3))
        reference = _reference_groups()
        for grp, count, total, low, high, avg in execution.result_rows:
            values = reference[grp]
            assert count == len(values)
            assert total == sum(values)
            assert low == min(values)
            assert high == max(values)
            assert avg == pytest.approx(sum(values) / len(values))

    def test_global_aggregate_single_row(self, entry):
        plan = aggregate_plan(entry, (AggregateExpr("count"),))
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_rows == [(700,)]

    def test_filtered_aggregation(self, entry):
        predicate = attribute_predicate(SCHEMA, "key", "<", 70,
                                        selectivity=0.1)
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp", predicate=predicate)
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 3))
        assert sum(count for _, count in execution.result_rows) == 70

    def test_empty_global_aggregate_emits_zero(self, entry):
        predicate = attribute_predicate(SCHEMA, "key", "<", 0,
                                        selectivity=0.0)
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              predicate=predicate)
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_rows == [(0,)]

    def test_empty_grouped_aggregate_emits_nothing(self, entry):
        predicate = attribute_predicate(SCHEMA, "key", "<", 0,
                                        selectivity=0.0)
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp", predicate=predicate)
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_rows == []

    def test_finalize_cost_accounted(self, entry):
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        # response strictly after the last activation: emission costs time
        assert execution.response_time > 0

    def test_scheduler_handles_aggregate_plans(self, entry):
        plan = aggregate_plan(entry, (AggregateExpr("sum", "val"),),
                              group_by="grp")
        machine = Machine.uniform(processors=8)
        schedule = AdaptiveScheduler(machine).schedule(plan, 6)
        total = sum(s.threads for s in schedule.operations.values())
        assert total == 6


class TestSQLAggregation:
    def test_group_by_count(self, db):
        result = db.query("SELECT grp, COUNT(*) FROM R GROUP BY grp",
                          threads=4)
        assert sorted(result.rows) == [(g, 100) for g in range(7)]
        assert result.schema.names == ("grp", "count")

    def test_select_order_respected(self, db):
        result = db.query("SELECT COUNT(*), grp FROM R GROUP BY grp",
                          threads=4)
        assert sorted(result.rows) == [(100, g) for g in range(7)]
        assert result.schema.names == ("count", "grp")

    def test_global_with_where(self, db):
        result = db.query("SELECT SUM(val), COUNT(*) FROM R WHERE key < 10")
        assert result.rows == [(sum(3 * i for i in range(10)), 10)]

    def test_min_max_avg(self, db):
        result = db.query("SELECT MIN(val), MAX(val), AVG(val) FROM R")
        assert result.rows == [(0, 2097, pytest.approx(3 * 699 / 2))]

    def test_non_group_column_rejected(self, db):
        with pytest.raises(CompilationError, match="GROUP BY attribute"):
            db.query("SELECT key, COUNT(*) FROM R GROUP BY grp")

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(CompilationError):
            db.query("SELECT grp FROM R GROUP BY grp")

    def test_aggregate_over_join_rejected(self, db):
        db.create_table(Relation("S", SCHEMA, ROWS[:50]), "key", 10)
        with pytest.raises(CompilationError, match="join"):
            db.query("SELECT COUNT(*) FROM R JOIN S ON R.key = S.key")

    def test_explain_aggregate(self, db):
        text = db.explain("SELECT grp, COUNT(*) FROM R GROUP BY grp")
        assert "aggregate" in text
        assert "pipelined" in text
