"""The adapted Wisconsin query suite runs and verifies cardinalities."""

import pytest

from repro.bench.wisconsin_queries import (
    agg_min_grouped,
    join_a_bprime,
    join_a_sel_bprime,
    make_database,
    sel_1pct,
    sel_10pct,
    standard_suite,
)


@pytest.fixture(scope="module")
def db():
    return make_database(cardinality=2000, degree=20, processors=16)


class TestIndividualQueries:
    def test_sel_1pct(self, db):
        result = sel_1pct(db).run(threads=4)
        assert result.cardinality == 20
        assert all(row[db.table("A").relation.schema.position("onePercent")]
                   == 7 for row in result.rows)

    def test_sel_10pct(self, db):
        result = sel_10pct(db).run(threads=4)
        assert result.cardinality == 200

    def test_join_a_bprime(self, db):
        result = join_a_bprime(db).run(threads=4)
        assert result.cardinality == 200
        assert "IdealJoin" in result.description

    def test_join_a_sel_bprime_uses_pipeline(self, db):
        result = join_a_sel_bprime(db).run(threads=4)
        assert result.cardinality == 20
        assert "FilterJoin" in result.description

    def test_agg_min_grouped(self, db):
        result = agg_min_grouped(db).run(threads=4)
        assert result.cardinality == 100
        # MIN(unique1) over onePercent = unique1 % 100 groups: the
        # minimum of group g is exactly g.
        assert sorted(result.rows) == [(g, g) for g in range(100)]

    def test_cardinality_mismatch_raises(self, db):
        from repro.bench.wisconsin_queries import WisconsinQuery
        bogus = WisconsinQuery("bogus", "SELECT * FROM A WHERE two = 0",
                               expected_cardinality=1, db=db)
        with pytest.raises(AssertionError, match="bogus"):
            bogus.run(threads=2)


class TestSuite:
    def test_standard_suite_runs_green(self, db):
        for query in standard_suite(db):
            result = query.run(threads=4)
            assert result.cardinality == query.expected_cardinality

    def test_temp_index_algorithm_variant(self, db):
        result = join_a_bprime(db).run(threads=4, algorithm="temp_index")
        assert result.cardinality == 200
