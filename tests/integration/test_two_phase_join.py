"""Multi-chain (Figure 5 style) execution: store + second-phase join."""

import pytest

from repro.bench.workloads import make_join_database, skewed_fragments
from repro.engine.executor import Executor, QuerySchedule
from repro.errors import PlanError
from repro.lera.plans import two_phase_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec


@pytest.fixture
def setup():
    """A,B co-partitioned (d=10); C partitioned on key (d=8)."""
    database = make_join_database(1000, 100, degree=10, theta=0.0)
    relation_c, fragments_c = skewed_fragments("C", 300, 8, 0.0)
    catalog = Catalog()
    entry_c = catalog.register_fragments(relation_c,
                                         PartitioningSpec.on("key", 8),
                                         fragments_c)
    return database, entry_c


def _reference(database, entry_c):
    t1 = database.entry_a.relation.join(database.entry_b.relation,
                                        "key", "key")
    return sorted(t1.join(entry_c.relation, "key", "key").rows)


class TestPlanShape:
    def test_two_chains(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        waves = plan.chain_waves()
        assert len(waves) == 2
        assert [n.name for n in waves[0][0].nodes] == ["join1", "store1"]
        assert [n.name for n in waves[1][0].nodes] == ["join2"]

    def test_intermediate_degree_matches_second_operand(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        assert plan.node("store1").instances == entry_c.degree
        assert plan.node("join2").instances == entry_c.degree

    def test_bad_intermediate_key_rejected(self, setup):
        database, entry_c = setup
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            two_phase_join_plan(database.entry_a, database.entry_b,
                                "key", "key", entry_c, "ghost", "key")

    def test_second_operand_partitioning_checked(self, setup):
        database, entry_c = setup
        with pytest.raises(PlanError, match="partitioned on"):
            two_phase_join_plan(database.entry_a, database.entry_b,
                                "key", "key", entry_c, "key", "payload")


class TestExecution:
    def test_three_way_join_correct(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        machine = Machine.uniform(processors=16)
        schedule = AdaptiveScheduler(machine).schedule(plan, 8)
        execution = Executor(machine).execute(plan, schedule)
        assert sorted(execution.result_rows) == _reference(database, entry_c)

    def test_intermediate_materialized_before_second_join(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 4))
        store = execution.operation("store1")
        join2 = execution.operation("join2")
        assert join2.started_at >= store.finished_at
        # the store consumed exactly the first join's output
        join1 = execution.operation("join1")
        assert store.activations == join1.enqueues

    def test_intermediate_fragments_are_hash_partitioned(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        Executor(Machine.uniform()).execute(plan,
                                            QuerySchedule.for_plan(plan, 4))
        from repro.storage.tuples import stable_hash
        spec = plan.node("store1").spec
        for fragment in spec.target_fragments:
            for row in fragment.rows:
                assert stable_hash(row[spec.key_position]) % 8 == fragment.index

    def test_expected_cardinality_feeds_estimates(self, setup):
        database, entry_c = setup
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key",
                                   expected_intermediate=100)
        from repro.machine.costs import DEFAULT_COSTS
        spec = plan.node("join2").spec
        # fragments are empty at plan time, yet estimates are non-zero
        assert spec.total_complexity(DEFAULT_COSTS) > 0

    def test_skewed_first_phase_still_correct(self):
        database = make_join_database(1000, 100, degree=10, theta=1.0)
        relation_c, fragments_c = skewed_fragments("C", 300, 8, 0.0)
        catalog = Catalog()
        entry_c = catalog.register_fragments(relation_c,
                                             PartitioningSpec.on("key", 8),
                                             fragments_c)
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 6))
        assert sorted(execution.result_rows) == _reference(database, entry_c)
