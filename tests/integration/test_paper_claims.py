"""Small-scale versions of the paper's headline claims.

The full-size regenerations (paper cardinalities, full sweeps) live in
benchmarks/; these integration tests check the same *shapes* at sizes
that run in a couple of seconds, so the claims are guarded by the
plain test suite too.
"""

import pytest

from repro.analysis.formulas import nmax_from_costs
from repro.bench.runners import (
    chain_worst_time,
    run_assoc_join,
    run_ideal_join,
)
from repro.bench.workloads import make_join_database
from repro.machine.machine import Machine


@pytest.fixture(scope="module")
def databases():
    """Shared small databases across skew levels (A=20K, B'=2K, d=100)."""
    return {theta: make_join_database(20_000, 2000, degree=100, theta=theta)
            for theta in (0.0, 0.6, 1.0)}


MACHINE = Machine.uniform(processors=16)


class TestPipelinedSkewInsensitivity:
    """Figure 12: AssocJoin's time is flat in the skew factor."""

    def test_flat_across_skew(self, databases):
        times = [run_assoc_join(databases[theta], 10,
                                machine=MACHINE).response_time
                 for theta in (0.0, 0.6, 1.0)]
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.05

    def test_under_worst_bound(self, databases):
        execution = run_assoc_join(databases[1.0], 10, machine=MACHINE)
        assert execution.response_time <= chain_worst_time(execution) * 1.05


class TestTriggeredSkewSensitivity:
    """Figure 13: triggered joins suffer; LPT helps; Pmax pins the tail."""

    def test_random_degrades_with_skew(self, databases):
        flat = run_ideal_join(databases[0.0], 10, strategy="random",
                              machine=MACHINE).response_time
        skewed = run_ideal_join(databases[1.0], 10, strategy="random",
                                machine=MACHINE).response_time
        assert skewed > flat * 1.3

    def test_lpt_beats_random_under_high_skew(self, databases):
        random_time = run_ideal_join(databases[1.0], 10, strategy="random",
                                     machine=MACHINE).response_time
        lpt_time = run_ideal_join(databases[1.0], 10, strategy="lpt",
                                  machine=MACHINE).response_time
        assert lpt_time <= random_time

    def test_pmax_lower_bounds_response(self, databases):
        execution = run_ideal_join(databases[1.0], 10, strategy="lpt",
                                   machine=MACHINE)
        pmax = execution.operation("join").profile().max_cost
        assert execution.response_time >= pmax


class TestSpeedupCeiling:
    """Figure 15: speed-up of a skewed triggered join plateaus at nmax."""

    def test_ceiling_near_nmax(self, databases):
        execution_small = run_ideal_join(databases[1.0], 2, strategy="lpt",
                                         machine=MACHINE)
        sequential = execution_small.work
        profile_nmax = nmax_from_costs(
            execution_small.operation("join").activation_costs)
        t = run_ideal_join(databases[1.0], 16, strategy="lpt",
                           machine=MACHINE).response_time
        speedup = sequential / t
        # plateau within ~15% of the analytic ceiling and never above it
        assert speedup <= profile_nmax + 0.1
        assert speedup >= profile_nmax * 0.8

    def test_unskewed_scales_linearly(self, databases):
        execution = run_ideal_join(databases[0.0], 8, machine=MACHINE)
        speedup = execution.work / execution.response_time
        assert speedup > 6.5


class TestPartitioningDecoupling:
    """Section 5.6: raising the degree rescues skewed triggered joins,
    at a modest overhead for unskewed ones."""

    def test_high_degree_reduces_skew_overhead(self):
        coarse = make_join_database(20_000, 2000, degree=20, theta=0.6)
        fine = make_join_database(20_000, 2000, degree=400, theta=0.6)
        coarse_base = make_join_database(20_000, 2000, degree=20, theta=0.0)
        fine_base = make_join_database(20_000, 2000, degree=400, theta=0.0)
        v_coarse = (run_ideal_join(coarse, 10, strategy="lpt",
                                   machine=MACHINE).response_time
                    / run_ideal_join(coarse_base, 10, strategy="lpt",
                                     machine=MACHINE).response_time) - 1
        v_fine = (run_ideal_join(fine, 10, strategy="lpt",
                                 machine=MACHINE).response_time
                  / run_ideal_join(fine_base, 10, strategy="lpt",
                                   machine=MACHINE).response_time) - 1
        assert v_fine < v_coarse
        assert v_fine < 0.1

    def test_assoc_join_flat_in_degree_skew(self):
        """Section 5.6.2: v(0.6) < 0.03 for AssocJoin at any degree."""
        for degree in (20, 200):
            base = make_join_database(10_000, 1000, degree=degree, theta=0.0)
            skewed = make_join_database(10_000, 1000, degree=degree, theta=0.6)
            v = (run_assoc_join(skewed, 10, machine=MACHINE).response_time
                 / run_assoc_join(base, 10, machine=MACHINE).response_time) - 1
            assert v < 0.03


class TestAdaptiveVsStatic:
    """The motivating comparison: DBS3's decoupled pools vs the static
    one-thread-per-instance baseline under skew."""

    def test_adaptive_wins_under_skew(self, databases):
        from repro.engine.executor import Executor
        from repro.lera.plans import ideal_join_plan
        from repro.scheduler.adaptive import AdaptiveScheduler, StaticScheduler
        database = databases[1.0]
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        machine = Machine.uniform(processors=16)
        executor = Executor(machine)
        adaptive = executor.execute(
            plan, AdaptiveScheduler(machine).schedule(plan, total_threads=16))
        static = executor.execute(plan, StaticScheduler(machine).schedule(plan))
        assert adaptive.response_time < static.response_time
