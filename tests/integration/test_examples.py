"""Smoke-run every example script (they must stay executable)."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "skew_handling.py",
    "partitioning_tuning.py",
    "adaptive_scheduling.py",
    "allcache_memory.py",
    "multi_chain_queries.py",
    "model_validation.py",
    "concurrent_workload.py",
])
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100, f"{script} produced no meaningful output"
