"""Reporting CLI and the demo driver (structure-level tests)."""

import pathlib

import pytest

from repro.bench import reporting
from repro.bench.harness import ExperimentResult


class TestExperimentRegistry:
    def test_every_figure_registered(self):
        ids = [figure_id for figure_id, _, _ in reporting.EXPERIMENTS]
        assert ids == ["fig08_09", "fig12", "fig13", "fig14", "fig15",
                       "fig16", "fig17", "fig18", "fig19", "fig_concurrent"]

    def test_runners_are_callable(self):
        for _, paper_run, small_run in reporting.EXPERIMENTS:
            assert callable(paper_run)
            assert callable(small_run)


class TestGenerateAll:
    def test_single_tiny_experiment_writes_table(self, tmp_path, monkeypatch):
        """Run generate_all over one shrunken experiment end to end."""
        from repro.bench import fig13_idealjoin_skew

        tiny = ("fig13",
                lambda: fig13_idealjoin_skew.run(
                    card_a=2000, card_b=200, degree=20, threads=4,
                    thetas=(0.0, 1.0)),
                lambda: fig13_idealjoin_skew.run(
                    card_a=2000, card_b=200, degree=20, threads=4,
                    thetas=(0.0, 1.0)))
        monkeypatch.setattr(reporting, "EXPERIMENTS", [tiny])
        import io
        stream = io.StringIO()
        results = reporting.generate_all("small", tmp_path, stream=stream)
        assert len(results) == 1
        assert isinstance(results[0], ExperimentResult)
        assert (tmp_path / "fig13.txt").exists()
        assert (tmp_path / "all_figures.txt").exists()
        assert "fig13" in stream.getvalue()

    def test_main_parses_arguments(self, tmp_path, monkeypatch):
        calls = {}

        def fake_generate(scale, out_dir, stream=None):
            calls["scale"] = scale
            calls["out"] = out_dir
            return []

        monkeypatch.setattr(reporting, "generate_all", fake_generate)
        code = reporting.main(["--scale", "paper", "--out", str(tmp_path)])
        assert code == 0
        assert calls["scale"] == "paper"
        assert calls["out"] == pathlib.Path(str(tmp_path))


class TestDemoDriver:
    def test_demo_runs(self, capsys):
        from repro import __main__ as main_module
        # shrink the demo's data through the generator it uses
        code = main_module.main([])
        assert code == 0
        output = capsys.readouterr().out
        assert "SQL>" in output
        assert "IdealJoin" in output

    def test_figures_flag_dispatches(self, monkeypatch):
        from repro import __main__ as main_module
        called = {}
        def fake_main(argv):
            called["argv"] = argv
            return 0

        monkeypatch.setattr(main_module.reporting, "main", fake_main)
        code = main_module.main(["--figures", "--scale", "small"])
        assert code == 0
        assert called["argv"] == ["--scale", "small"]
