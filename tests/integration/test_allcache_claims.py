"""Section 5.2's qualitative Allcache claims beyond Figures 8/9."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    PLACEMENT_COLD,
    PLACEMENT_WARM,
    ExecutionOptions,
    Executor,
    QuerySchedule,
)
from repro.lera.plans import ideal_join_plan, selection_plan
from repro.lera.predicates import TRUE
from repro.machine.machine import Machine
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec
from repro.storage.wisconsin import generate_wisconsin


def _relative_penalty(plan, threads):
    times = {}
    for placement in (PLACEMENT_WARM, PLACEMENT_COLD):
        machine = Machine.ksr1(processors=16)
        executor = Executor(machine, ExecutionOptions(placement=placement))
        times[placement] = executor.execute(
            plan, QuerySchedule.for_plan(plan, threads)).response_time
    return (times[PLACEMENT_COLD] - times[PLACEMENT_WARM]) / times[PLACEMENT_COLD]


class TestJoinsSufferLessThanScans:
    def test_remote_fraction_smaller_for_joins(self):
        """"For more complex queries (e.g. join), this overhead would
        become even smaller" — the join does far more CPU work per
        byte shipped, so the remote fraction shrinks."""
        catalog = Catalog()
        relation = generate_wisconsin("W", 5000, seed=3)
        entry = catalog.register(relation, PartitioningSpec.on("unique1", 20))
        scan_fraction = _relative_penalty(selection_plan(entry, TRUE), 4)

        database = make_join_database(5000, 500, degree=20, theta=0.0)
        join_plan = ideal_join_plan(database.entry_a, database.entry_b,
                                    "key", "key")
        join_fraction = _relative_penalty(join_plan, 4)

        assert scan_fraction > 0
        assert join_fraction < scan_fraction

    def test_second_query_runs_local(self):
        """Once caches are filled, "all accesses get local": re-running
        the same plan on the same machine pays no further penalty."""
        catalog = Catalog()
        relation = generate_wisconsin("W", 2000, seed=3)
        entry = catalog.register(relation, PartitioningSpec.on("unique1", 8))
        plan = selection_plan(entry, TRUE)
        machine = Machine.ksr1(processors=8)
        executor = Executor(machine, ExecutionOptions(placement=PLACEMENT_COLD))
        first = executor.execute(plan, QuerySchedule.for_plan(plan, 4))
        second = executor.execute(plan, QuerySchedule.for_plan(plan, 4))
        assert first.operation("filter").memory_penalty > 0
        assert second.operation("filter").memory_penalty == pytest.approx(
            0.0, abs=first.operation("filter").memory_penalty * 0.2)
        assert second.response_time < first.response_time
