"""Workload-generator invariants the experiments depend on."""

import pytest

from repro.bench.workloads import (
    JOIN_SCHEMA,
    make_join_database,
    make_selection_table,
    skewed_fragments,
)
from repro.storage.skew import zipf_cardinalities
from repro.storage.tuples import stable_hash


class TestSkewedFragments:
    def test_total_cardinality_exact(self):
        relation, fragments = skewed_fragments("A", 1234, 17, 0.7)
        assert relation.cardinality == 1234
        assert sum(f.cardinality for f in fragments) == 1234

    def test_keys_hash_to_their_fragment(self):
        """The skewed placement is a *legal* hash partitioning."""
        _, fragments = skewed_fragments("A", 500, 8, 1.0)
        for fragment in fragments:
            for row in fragment.rows:
                assert stable_hash(row[0]) % 8 == fragment.index

    def test_keys_are_unique(self):
        relation, _ = skewed_fragments("A", 1000, 10, 0.8)
        keys = relation.column("key")
        assert len(set(keys)) == len(keys)

    def test_cardinalities_follow_zipf(self):
        _, fragments = skewed_fragments("A", 1000, 10, 1.0)
        assert [f.cardinality for f in fragments] == zipf_cardinalities(
            1000, 10, 1.0)


class TestJoinDatabase:
    def test_expected_matches_with_paper_ratios(self):
        """With |A| = 10 |B'| every B' key finds a partner at any skew,
        so the result cardinality is exactly |B'|."""
        for theta in (0.0, 0.4, 0.8, 1.0):
            database = make_join_database(2000, 200, degree=20, theta=theta)
            assert database.expected_matches == 200

    def test_extreme_skew_can_reduce_matches(self):
        """If A's smallest fragment dips below B's share, matches drop —
        the generator reports this honestly via expected_matches."""
        database = make_join_database(100, 90, degree=10, theta=1.0)
        assert database.expected_matches < 90

    def test_entries_copartitioned(self):
        database = make_join_database(400, 40, degree=8, theta=0.3)
        assert database.entry_a.spec.compatible_with(database.entry_b.spec)
        assert database.degree == 8

    def test_b_side_always_uniform(self):
        database = make_join_database(1000, 100, degree=10, theta=1.0)
        cards = database.entry_b.statistics.cardinalities
        assert max(cards) - min(cards) <= 1

    def test_schema(self):
        database = make_join_database(100, 10, degree=5, theta=0.0)
        assert database.entry_a.relation.schema == JOIN_SCHEMA

    def test_payloads_distinguish_relations(self):
        database = make_join_database(100, 10, degree=5, theta=0.0)
        a_payloads = set(database.entry_a.relation.column("payload"))
        b_payloads = set(database.entry_b.relation.column("payload"))
        assert not (a_payloads & b_payloads)


class TestSelectionTable:
    def test_wisconsin_table_registered(self):
        entry = make_selection_table(cardinality=1000, degree=10)
        assert entry.cardinality == 1000
        assert entry.degree == 10
        assert "unique1" in entry.relation.schema
