"""Permanent indexes and index-aware selection."""

import pytest

from repro.core.database import DBS3
from repro.errors import PlanError, SchemaError
from repro.lera.plans import index_scan_plan
from repro.storage.wisconsin import generate_wisconsin


@pytest.fixture
def db():
    database = DBS3(processors=8)
    database.create_table(generate_wisconsin("A", 5000, seed=1),
                          "unique1", 20)
    return database


class TestCatalogIndexes:
    def test_create_index_per_fragment(self, db):
        db.create_index("A", "unique2")
        entry = db.table("A")
        indexes = entry.index_on("unique2")
        assert len(indexes) == entry.degree
        total = sum(len(index) for index in indexes)
        assert total == entry.cardinality

    def test_index_on_missing_returns_none(self, db):
        assert db.table("A").index_on("unique2") is None

    def test_bad_attribute_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_index("A", "ghost")

    def test_sorted_index_kind(self, db):
        db.create_index("A", "unique2", kind="sorted")
        from repro.storage.indexes import SortedIndex
        assert isinstance(db.table("A").index_on("unique2")[0], SortedIndex)


class TestIndexScanPlan:
    def test_requires_existing_index(self, db):
        with pytest.raises(PlanError, match="create_index"):
            index_scan_plan(db.table("A"), "unique2", 5)

    def test_probe_results_match_scan(self, db):
        db.create_index("A", "tenPercent")
        scan = db.query("SELECT * FROM A WHERE unique2 < 99999")  # full scan
        probe_plan = index_scan_plan(db.table("A"), "tenPercent", 3)
        from repro.engine.executor import Executor, QuerySchedule
        execution = db.executor.execute(
            probe_plan, QuerySchedule.for_plan(probe_plan, 4))
        expected = [row for row in scan.rows if row[7] == 3]
        assert sorted(execution.result_rows) == sorted(expected)


class TestCompilerIntegration:
    def test_equality_on_indexed_attribute_uses_probe(self, db):
        db.create_index("A", "unique2")
        compiled = db.compile("SELECT * FROM A WHERE unique2 = 42")
        assert "index_scan" in compiled.description

    def test_probe_much_faster_than_scan(self, db):
        scan = db.query("SELECT * FROM A WHERE unique2 = 42", threads=4)
        db.create_index("A", "unique2")
        probe = db.query("SELECT * FROM A WHERE unique2 = 42", threads=4)
        assert sorted(probe.rows) == sorted(scan.rows)
        assert probe.response_time < scan.response_time / 3

    def test_range_predicate_still_scans(self, db):
        db.create_index("A", "unique2")
        compiled = db.compile("SELECT * FROM A WHERE unique2 < 42")
        assert "selection" in compiled.description

    def test_conjunction_still_scans(self, db):
        db.create_index("A", "unique2")
        compiled = db.compile(
            "SELECT * FROM A WHERE unique2 = 42 AND two = 0")
        assert "selection" in compiled.description

    def test_unindexed_equality_scans(self, db):
        compiled = db.compile("SELECT * FROM A WHERE unique2 = 42")
        assert "selection" in compiled.description

    def test_projection_applies_to_probe(self, db):
        db.create_index("A", "unique2")
        result = db.query("SELECT unique1 FROM A WHERE unique2 = 42")
        assert len(result.rows) == 1
        assert len(result.rows[0]) == 1
