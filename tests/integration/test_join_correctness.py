"""End-to-end join correctness against the sequential reference.

Every parallel execution must produce exactly the rows a sequential
hash join over the same relations produces — for every plan shape,
algorithm, strategy, thread count and skew level.
"""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import Executor, QuerySchedule
from repro.lera.operators import JOIN_HASH, JOIN_NESTED_LOOP, JOIN_TEMP_INDEX
from repro.lera.plans import assoc_join_plan, filter_join_plan, ideal_join_plan
from repro.lera.predicates import attribute_predicate
from repro.machine.machine import Machine


def _reference_pairs(database):
    """(a_row, b_row) matches from the sequential reference join."""
    joined = database.entry_a.relation.join(database.entry_b.relation,
                                            "key", "key")
    return sorted(joined.rows)


def _executor():
    return Executor(Machine.uniform(processors=8))


@pytest.mark.parametrize("algorithm", [JOIN_NESTED_LOOP, JOIN_TEMP_INDEX,
                                       JOIN_HASH])
@pytest.mark.parametrize("theta", [0.0, 1.0])
class TestIdealJoin:
    def test_matches_reference(self, algorithm, theta):
        database = make_join_database(1000, 100, degree=10, theta=theta)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key", algorithm=algorithm)
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 4))
        assert sorted(execution.result_rows) == _reference_pairs(database)


@pytest.mark.parametrize("algorithm", [JOIN_NESTED_LOOP, JOIN_TEMP_INDEX,
                                       JOIN_HASH])
@pytest.mark.parametrize("theta", [0.0, 1.0])
class TestAssocJoin:
    def test_matches_reference(self, algorithm, theta):
        database = make_join_database(1000, 100, degree=10, theta=theta)
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key", algorithm=algorithm)
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 3))
        # AssocJoin emits stream(B) + stored(A); reorder to compare.
        produced = sorted(row[2:] + row[:2] for row in execution.result_rows)
        assert produced == _reference_pairs(database)


class TestStrategiesAndThreads:
    @pytest.mark.parametrize("strategy", ["random", "lpt", "round_robin"])
    def test_strategy_does_not_change_results(self, strategy):
        database = make_join_database(1000, 100, degree=10, theta=1.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        execution = _executor().execute(
            plan, QuerySchedule.for_plan(plan, 4, strategy=strategy))
        assert sorted(execution.result_rows) == _reference_pairs(database)

    @pytest.mark.parametrize("threads", [1, 2, 5, 16])
    def test_thread_count_does_not_change_results(self, threads):
        database = make_join_database(600, 60, degree=6, theta=0.5)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        execution = _executor().execute(
            plan, QuerySchedule.for_plan(plan, threads))
        assert sorted(execution.result_rows) == _reference_pairs(database)


class TestFilterJoin:
    def test_matches_filtered_reference(self):
        database = make_join_database(1000, 100, degree=10, theta=0.0)
        predicate = attribute_predicate(database.entry_b.relation.schema,
                                        "key", "<", 500, selectivity=0.5)
        plan = filter_join_plan(database.entry_b, database.entry_a, predicate,
                                "key", "key")
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 3))
        filtered_b = database.entry_b.relation.select(lambda row: row[0] < 500)
        reference = sorted(filtered_b.join(database.entry_a.relation,
                                           "key", "key").rows)
        assert sorted(execution.result_rows) == reference

    def test_empty_filter_output(self):
        database = make_join_database(500, 50, degree=5, theta=0.0)
        predicate = attribute_predicate(database.entry_b.relation.schema,
                                        "key", "<", 0, selectivity=0.0)
        plan = filter_join_plan(database.entry_b, database.entry_a, predicate,
                                "key", "key")
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == 0
