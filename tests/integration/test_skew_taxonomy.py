"""Skew-taxonomy workload construction invariants."""

import pytest

from repro.bench.skew_taxonomy import (
    all_workloads,
    make_avs_workload,
    make_jps_workload,
    make_rs_workload,
    make_ss_workload,
)
from repro.engine.executor import Executor, QuerySchedule
from repro.machine.machine import Machine
from repro.storage.tuples import stable_hash

MACHINE = Machine.uniform(processors=8)

SIZES = dict(card_r=800, card_s=800, degree=8)


def _run(workload, threads=4):
    executor = Executor(MACHINE)
    return executor.execute(workload.plan,
                            QuerySchedule.for_plan(workload.plan, threads))


class TestConstruction:
    def test_all_workloads_build(self):
        kinds = [w.kind for w in all_workloads(**SIZES)]
        assert kinds == ["AVS/TPS", "SS", "RS", "JPS"]

    def test_stored_fragments_hash_partitioned(self):
        for workload in all_workloads(**SIZES):
            degree = workload.entry_s.degree
            for fragment in workload.entry_s.fragments:
                for row in fragment.rows:
                    assert stable_hash(row[0]) % degree == fragment.index

    def test_avs_has_skewed_stored_fragments(self):
        workload = make_avs_workload(**SIZES)
        assert workload.entry_s.statistics.skew_ratio > 2.0

    def test_rs_has_uniform_stored_fragments(self):
        workload = make_rs_workload(**SIZES)
        assert workload.entry_s.statistics.skew_ratio < 1.2


class TestResultsAreReal:
    def test_avs_join_matches_reference(self):
        workload = make_avs_workload(**SIZES)
        execution = _run(workload)
        reference = workload.entry_r.relation.join(
            workload.entry_s.relation, "key", "key")
        assert execution.result_cardinality == reference.cardinality

    def test_ss_filter_halves_stream(self):
        workload = make_ss_workload(**SIZES)
        execution = _run(workload)
        join = execution.operation("join")
        assert join.activations == workload.entry_r.cardinality // 2

    def test_jps_hot_key_multiplies_output(self):
        workload = make_jps_workload(**SIZES, hot_matches=100)
        execution = _run(workload)
        base = make_avs_workload(**SIZES)  # same R size, no hot key
        assert execution.result_cardinality > workload.entry_r.cardinality

    def test_rs_floods_few_queues(self):
        workload = make_rs_workload(**SIZES)
        execution = _run(workload)
        assert execution.operation("join").queue_imbalance() > 2.0


class TestMetricsSupport:
    def test_queue_activations_sum_to_enqueues(self):
        workload = make_rs_workload(**SIZES)
        execution = _run(workload)
        join = execution.operation("join")
        filter_metrics = execution.operation("filter")
        assert sum(join.queue_activations) == filter_metrics.enqueues

    def test_activation_outputs_sum_to_emitted(self):
        workload = make_avs_workload(**SIZES)
        execution = _run(workload)
        join = execution.operation("join")
        assert join.emitted == join.result_count
