"""The virtual-time metrics registry: instruments, percentiles, snapshots."""

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    LOG_BUCKET_BOUNDS,
    MetricsRegistry,
    bucket_index,
    percentile,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        assert percentile(values, 50) == 0.5
        assert percentile(values, 95) == 1.0
        assert percentile(values, 99) == 1.0
        assert percentile(values, 100) == 1.0
        assert percentile(values, 0) == 0.1

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            percentile([1.0], 101)


class TestCounter:
    def test_inc_and_value_at(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc(0.1)
        counter.inc(0.2, 2.0)
        assert counter.value == 3.0
        assert counter.value_at(0.05) == 0.0
        assert counter.value_at(0.1) == 1.0
        assert counter.value_at(0.15) == 1.0
        assert counter.value_at(9.0) == 3.0

    def test_negative_delta_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ReproError):
            counter.inc(0.0, -1.0)

    def test_out_of_order_increment_splices_in(self):
        """Completion bookkeeping can carry an earlier stamp than an
        already-recorded sample; the cumulative series stays exact."""
        counter = MetricsRegistry().counter("events_total")
        counter.inc(0.1)
        counter.inc(0.5)
        counter.inc(0.3)  # late arrival, earlier stamp
        assert counter.value == 3.0
        assert counter.value_at(0.2) == 1.0
        assert counter.value_at(0.3) == 2.0
        assert counter.value_at(0.4) == 2.0
        assert counter.value_at(0.5) == 3.0
        assert counter.times == sorted(counter.times)


class TestGauge:
    def test_set_value_and_peak(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(0.0, 2.0)
        gauge.set(0.1, 5.0)
        gauge.set(0.2, 1.0)
        assert gauge.value == 1.0
        assert gauge.peak == 5.0
        assert gauge.value_at(0.15) == 5.0

    def test_out_of_order_sample_filed_by_stamp(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(0.5, 3.0)
        gauge.set(0.2, 1.0)  # late arrival, earlier stamp
        assert gauge.times == [0.2, 0.5]
        assert gauge.value_at(0.3) == 1.0
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_count_mean_max(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value, value)
        assert histogram.count == 4
        assert histogram.max == 0.4
        assert histogram.mean == pytest.approx(0.25)
        assert histogram.percentile(50) == 0.2

    def test_observations_at_restricts_by_stamp(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe(0.1, 1.0)
        histogram.observe(0.2, 2.0)
        histogram.observe(0.3, 3.0)
        assert histogram.observations_at(0.2) == [1.0, 2.0]
        assert histogram.percentile(99, at=0.2) == 2.0

    def test_buckets_are_log_scale(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe(0.0, 0.3)
        histogram.observe(0.1, 0.3)
        histogram.observe(0.2, 1e9)  # overflow bucket
        buckets = histogram.buckets()
        assert buckets[0] == (0.5, 2)
        assert buckets[-1] == (float("inf"), 1)

    def test_empty_statistics_rejected(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ReproError):
            histogram.mean
        with pytest.raises(ReproError):
            histogram.max

    def test_bucket_index_covers_the_line(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(LOG_BUCKET_BOUNDS[0]) == 0
        assert bucket_index(LOG_BUCKET_BOUNDS[-1] + 1) == len(
            LOG_BUCKET_BOUNDS)


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("grants_total", reason="admission")
        b = registry.counter("grants_total", reason="admission")
        c = registry.counter("grants_total", reason="shrink")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        assert len(registry) == 0

    def test_family_and_total(self):
        registry = MetricsRegistry()
        registry.counter("grants_total", reason="admission").inc(0.0, 2)
        registry.counter("grants_total", reason="shrink").inc(0.5)
        assert len(registry.family("grants_total")) == 2
        assert registry.total("grants_total") == 3.0
        assert registry.total("grants_total", at=0.25) == 2.0

    def test_snapshot_rows(self):
        registry = MetricsRegistry()
        registry.counter("done_total").inc(0.1)
        registry.gauge("depth").set(0.2, 4.0)
        histogram = registry.histogram("latency")
        histogram.observe(0.3, 0.3)
        histogram.observe(0.4, 1e9)
        rows = {row["name"]: row for row in registry.snapshot()}
        assert rows["done_total"]["value"] == 1.0
        assert rows["depth"]["value"] == 4.0
        latency = rows["latency"]
        assert latency["count"] == 2
        assert latency["p50"] == 0.3
        # The overflow bucket bound must be JSON-representable (null).
        assert latency["buckets"][-1][0] is None

    def test_snapshot_at_virtual_time(self):
        registry = MetricsRegistry()
        registry.counter("done_total").inc(0.1)
        registry.counter("done_total").inc(0.9)
        rows = registry.snapshot(at=0.5)
        assert rows[0]["value"] == 1.0


class TestRenderProm:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("done_total", status="done").inc(0.1, 3)
        registry.gauge("depth").set(0.2, 4.0)
        text = registry.render_prom()
        assert "# TYPE done_total counter" in text
        assert 'done_total{status="done"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        histogram.observe(0.0, 0.3)
        histogram.observe(0.1, 0.3)
        histogram.observe(0.2, 1e9)  # +Inf bucket only
        text = registry.render_prom()
        assert 'latency_bucket{le="0.5"} 2' in text
        assert 'latency_bucket{le="1"} 2' in text  # cumulative
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text
        assert "latency_sum 1000000000.6" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", op='a"b\\c\nd').inc(0.0)
        text = registry.render_prom()
        assert 'op="a\\"b\\\\c\\nd"' in text

    def test_at_restricts_to_virtual_instant(self):
        registry = MetricsRegistry()
        registry.counter("done_total").inc(0.1)
        registry.counter("done_total").inc(0.9)
        histogram = registry.histogram("latency")
        histogram.observe(0.1, 0.3)
        histogram.observe(0.9, 0.4)
        text = registry.render_prom(at=0.5)
        assert "done_total 1" in text
        assert "latency_count 1" in text

    def test_families_sorted_and_empty_registry(self):
        registry = MetricsRegistry()
        registry.gauge("zz").set(0.0, 1.0)
        registry.counter("aa_total").inc(0.0)
        text = registry.render_prom()
        assert text.index("aa_total") < text.index("zz")
        assert MetricsRegistry().render_prom() == ""
