"""The alert layer: dedup discipline, resolve-on-recovery, JSON round trip."""

from repro.obs.alerts import (
    SEV_CRITICAL,
    SEV_INFO,
    SEV_WARNING,
    Alert,
    AlertBus,
)


class TestConditionAlerts:
    def test_fires_once_while_active(self):
        bus = AlertBus()
        first = bus.fire("memory_pressure", "gate", SEV_WARNING, 1.0,
                         0.95, 0.9)
        assert first is not None
        assert bus.fire("memory_pressure", "gate", SEV_WARNING, 2.0,
                        0.97, 0.9) is None
        assert len(bus) == 1
        assert bus.is_active("memory_pressure", "gate")

    def test_resolve_closes_and_allows_refire(self):
        bus = AlertBus()
        bus.fire("memory_pressure", "gate", SEV_WARNING, 1.0, 0.95, 0.9)
        resolved = bus.resolve("memory_pressure", "gate", 3.0)
        assert resolved is not None
        assert resolved.resolved_at == 3.0
        assert not resolved.active
        assert not bus.is_active("memory_pressure", "gate")
        # A new crossing after recovery is a new alert.
        again = bus.fire("memory_pressure", "gate", SEV_WARNING, 5.0,
                         0.92, 0.9)
        assert again is not None
        assert len(bus) == 2

    def test_resolve_without_active_is_noop(self):
        bus = AlertBus()
        assert bus.resolve("memory_pressure", "gate", 1.0) is None
        assert len(bus) == 0

    def test_keys_dedup_independently(self):
        bus = AlertBus()
        assert bus.fire("slo", "q0", SEV_WARNING, 1.0, 2.0, 1.0)
        assert bus.fire("slo", "q1", SEV_WARNING, 1.0, 3.0, 1.0)
        assert bus.fire("slo", "q0", SEV_WARNING, 2.0, 2.5, 1.0) is None
        assert len(bus) == 2


class TestEventAlerts:
    def test_born_resolved_and_deduped_forever(self):
        bus = AlertBus()
        alert = bus.fire("straggler", "q0/w1/join", SEV_WARNING, 1.0,
                         2.4, 2.0, event=True)
        assert alert is not None
        assert alert.resolved_at == alert.fired_at
        assert not alert.active
        # Re-evaluating the same crossing never fires again — even
        # "after" the instant, an event cannot recover and re-cross.
        assert bus.fire("straggler", "q0/w1/join", SEV_WARNING, 9.0,
                        3.0, 2.0, event=True) is None
        assert len(bus) == 1

    def test_distinct_crossings_fire_separately(self):
        bus = AlertBus()
        assert bus.fire("straggler", "q0/w1/join", SEV_WARNING, 1.0,
                        2.4, 2.0, event=True)
        assert bus.fire("straggler", "q0/w2/join", SEV_WARNING, 2.0,
                        2.2, 2.0, event=True)
        assert len(bus) == 2


class TestQueriesAndRendering:
    def _bus(self):
        bus = AlertBus()
        bus.fire("slo", "q0", SEV_WARNING, 1.0, 2.0, 1.0, event=True)
        bus.fire("slo", "burn", SEV_CRITICAL, 2.0, 0.5, 0.25)
        bus.fire("retry_storm", "total", SEV_INFO, 3.0, 9.0, 8.0)
        bus.resolve("retry_storm", "total", 4.0)
        return bus

    def test_of_and_active(self):
        bus = self._bus()
        assert [a.key for a in bus.of("slo")] == ["q0", "burn"]
        assert [a.rule for a in bus.active()] == ["slo"]

    def test_severity_counts_and_summary(self):
        bus = self._bus()
        assert bus.severity_counts() == {
            "warning": 1, "critical": 1, "info": 1}
        summary = bus.summary()
        assert "3 alerts" in summary
        assert "1 critical" in summary
        assert "1 active" in summary

    def test_empty_bus_renders(self):
        assert AlertBus().summary() == "no alerts"
        assert AlertBus().render() == "no alerts"

    def test_render_lists_every_alert(self):
        rendered = self._bus().render()
        assert "slo" in rendered
        assert "burn" in rendered
        assert "resolved @4.0000" in rendered


class TestJsonRoundTrip:
    def test_alert_round_trips(self):
        alert = Alert("slo", "q0", SEV_WARNING, 1.25, 2.0, 1.0,
                      message="over", resolved_at=None)
        again = Alert.from_json(alert.to_json())
        assert again == alert

    def test_bus_replay_restores_dedup_state(self):
        bus = AlertBus()
        bus.fire("straggler", "q0/w1/join", SEV_WARNING, 1.0, 2.4, 2.0,
                 event=True)
        bus.fire("slo", "burn", SEV_CRITICAL, 2.0, 0.5, 0.25)
        replayed = AlertBus()
        for alert in bus:
            replayed.add(Alert.from_json(alert.to_json()))
        assert len(replayed) == 2
        assert replayed.is_active("slo", "burn")
        # Both the event and the still-active condition stay deduped.
        assert replayed.fire("straggler", "q0/w1/join", SEV_WARNING,
                             9.0, 2.4, 2.0, event=True) is None
        assert replayed.fire("slo", "burn", SEV_CRITICAL, 9.0,
                             0.6, 0.25) is None
