"""Monitor rules: unit evaluation per control point, plus the live run.

The unit half drives each rule with synthetic :class:`MonitorContext`
payloads (exactly what the workload engine emits at its control
points); the integration half runs a real monitored workload and
checks the fired alerts land on ``WorkloadResult.alerts``, round-trip
through the schema-4 JSONL export, and cost nothing when no rules are
installed.
"""

import pytest

from repro import (
    DBS3,
    ObservabilityOptions,
    WorkloadError,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.obs.alerts import SEV_CRITICAL, AlertBus
from repro.obs.metrics import FAULT_RETRIES, MetricsRegistry
from repro.obs.monitor import (
    POINT_ADMISSION,
    POINT_FINISH,
    POINT_WAVE,
    AdmissionWaitMonitor,
    LatencySloMonitor,
    MemoryPressureMonitor,
    MonitorEngine,
    RetryStormMonitor,
    StragglerMonitor,
    default_monitors,
)


def _engine(rule, metrics=None) -> MonitorEngine:
    return MonitorEngine((rule,), metrics)


class TestLatencySloMonitor:
    def test_fires_per_query_over_slo(self):
        engine = _engine(LatencySloMonitor(slo=1.0))
        engine.observe(POINT_FINISH, 0.5, tag="q0", latency=0.5,
                       status="done")
        engine.observe(POINT_FINISH, 2.0, tag="q1", latency=2.0,
                       status="done")
        assert [a.key for a in engine.alerts] == ["q1"]
        assert engine.alerts.alerts[0].value == 2.0

    def test_burn_alert_needs_min_finished(self):
        engine = _engine(LatencySloMonitor(slo=1.0, burn_budget=0.25,
                                           min_finished=4))
        for i in range(3):
            engine.observe(POINT_FINISH, float(i), tag=f"q{i}",
                           latency=2.0, status="done")
        assert not engine.alerts.of("latency_slo") or all(
            a.key != "burn" for a in engine.alerts)
        engine.observe(POINT_FINISH, 3.0, tag="q3", latency=2.0,
                       status="done")
        burn = [a for a in engine.alerts if a.key == "burn"]
        assert len(burn) == 1
        assert burn[0].severity == SEV_CRITICAL
        assert burn[0].active

    def test_burn_resolves_when_share_recovers(self):
        engine = _engine(LatencySloMonitor(slo=1.0, burn_budget=0.5,
                                           min_finished=2))
        engine.observe(POINT_FINISH, 1.0, tag="q0", latency=2.0,
                       status="done")
        engine.observe(POINT_FINISH, 2.0, tag="q1", latency=2.0,
                       status="done")  # 2/2 over budget -> fires
        assert engine.alerts.is_active("latency_slo", "burn")
        for i in range(2, 5):  # fast finishes pull the share to 2/5
            engine.observe(POINT_FINISH, float(i), tag=f"q{i}",
                           latency=0.1, status="done")
        burn = [a for a in engine.alerts if a.key == "burn"]
        assert len(burn) == 1
        assert not burn[0].active
        assert burn[0].resolved_at == 3.0  # share hits 2/4 = budget

    def test_reset_clears_counts_across_runs(self):
        rule = LatencySloMonitor(slo=1.0, min_finished=2)
        engine = _engine(rule)
        engine.observe(POINT_FINISH, 1.0, tag="q0", latency=2.0,
                       status="done")
        # A new MonitorEngine (a new run) resets the rule's counters.
        fresh = _engine(rule)
        assert rule.finished == 0
        fresh.observe(POINT_FINISH, 1.0, tag="q0", latency=0.5,
                      status="done")
        assert len(fresh.alerts) == 0


class TestAdmissionWaitMonitor:
    def test_fires_per_breaching_admission(self):
        engine = _engine(AdmissionWaitMonitor(ceiling=0.1))
        engine.observe(POINT_ADMISSION, 1.0,
                       admitted=[("q0", 0.05), ("q1", 0.5)])
        assert [a.key for a in engine.alerts] == ["q1"]
        assert engine.alerts.alerts[0].value == 0.5


class TestMemoryPressureMonitor:
    def test_condition_lifecycle(self):
        engine = _engine(MemoryPressureMonitor(fraction=0.9))
        engine.observe(POINT_ADMISSION, 1.0, admitted=[],
                       used_bytes=95, memory_limit=100)
        assert engine.alerts.is_active("memory_pressure", "gate")
        engine.observe(POINT_ADMISSION, 2.0, admitted=[],
                       used_bytes=96, memory_limit=100)
        assert len(engine.alerts) == 1  # still the same crossing
        engine.observe(POINT_FINISH, 3.0, tag="q0", latency=1.0,
                       status="done", used_bytes=10, memory_limit=100)
        assert not engine.alerts.is_active("memory_pressure", "gate")
        assert engine.alerts.alerts[0].resolved_at == 3.0

    def test_noop_without_memory_gate(self):
        engine = _engine(MemoryPressureMonitor())
        engine.observe(POINT_ADMISSION, 1.0, admitted=[],
                       used_bytes=95, memory_limit=None)
        assert len(engine.alerts) == 0


class TestRetryStormMonitor:
    def test_fires_once_at_threshold(self):
        metrics = MetricsRegistry()
        counter = metrics.counter(FAULT_RETRIES, operation="join")
        engine = _engine(RetryStormMonitor(threshold=3), metrics)
        counter.inc(1.0, 2)
        engine.observe(POINT_FINISH, 1.0, tag="q0", latency=0.1,
                       status="done")
        assert len(engine.alerts) == 0
        counter.inc(2.0, 1)
        engine.observe(POINT_FINISH, 2.0, tag="q1", latency=0.1,
                       status="done")
        engine.observe(POINT_FINISH, 3.0, tag="q2", latency=0.1,
                       status="done")
        assert len(engine.alerts) == 1  # monotone total: fires once
        assert engine.alerts.alerts[0].fired_at == 2.0


class TestStragglerMonitor:
    #: One wave payload: (finished_at, busy, idle) per thread, keyed
    #: exactly like the engine's POINT_WAVE data.
    def test_fires_on_spread_with_blame(self):
        engine = _engine(StragglerMonitor(ratio=2.0))
        engine.observe(
            POINT_WAVE, 5.0, tag="q0", wave=1, started_at=0.0,
            ops=[("join", [(1.0, 0.9, 0.1), (1.0, 0.9, 0.1),
                           (5.0, 4.8, 0.2)])])  # spread 5/2.33 = 2.14
        assert len(engine.alerts) == 1
        alert = engine.alerts.alerts[0]
        assert alert.key == "q0/w1/join"
        assert "processing skew" in alert.message

    def test_blames_queue_wait_when_straggler_was_idle(self):
        engine = _engine(StragglerMonitor(ratio=2.0))
        engine.observe(
            POINT_WAVE, 5.0, tag="q0", wave=0, started_at=0.0,
            ops=[("join", [(1.0, 0.9, 0.1), (1.0, 0.9, 0.1),
                           (5.0, 0.5, 4.5)])])
        assert "queue wait" in engine.alerts.alerts[0].message

    def test_uniform_wave_is_silent(self):
        engine = _engine(StragglerMonitor(ratio=2.0))
        engine.observe(
            POINT_WAVE, 1.1, tag="q0", wave=0, started_at=0.0,
            ops=[("join", [(1.0, 1.0, 0.0), (1.1, 1.0, 0.1)])])
        assert len(engine.alerts) == 0

    def test_single_thread_ops_are_skipped(self):
        engine = _engine(StragglerMonitor(ratio=2.0, min_threads=2))
        engine.observe(
            POINT_WAVE, 9.0, tag="q0", wave=0, started_at=0.0,
            ops=[("scan", [(9.0, 9.0, 0.0)])])
        assert len(engine.alerts) == 0


# -- the live run -------------------------------------------------------------

QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
)


def _db() -> DBS3:
    db = DBS3(processors=24)
    db.create_table(generate_wisconsin("A", 800, seed=1), "unique1",
                    degree=8)
    db.create_table(generate_wisconsin("B", 80, seed=2), "unique1",
                    degree=8)
    db.create_table(generate_wisconsin("C", 600, seed=3), "unique1",
                    degree=8)
    db.create_table(generate_wisconsin("D", 60, seed=4), "unique1",
                    degree=8)
    return db


def _run(options: WorkloadOptions):
    session = _db().session(options=options)
    for i, sql in enumerate(QUERIES):
        session.submit(sql, tag=f"q{i}")
    return session.run()


class TestMonitoredRun:
    def test_tight_slo_fires_on_every_query(self):
        result = _run(WorkloadOptions(observability=ObservabilityOptions(
            monitors=(LatencySloMonitor(slo=1e-6, min_finished=2),))))
        slo = [a for a in result.alerts if a.key.startswith("q")]
        assert {a.key for a in slo} == {"q0", "q1"}
        burn = [a for a in result.alerts if a.key == "burn"]
        assert len(burn) == 1 and burn[0].active

    def test_loose_thresholds_fire_nothing(self):
        result = _run(WorkloadOptions(observability=ObservabilityOptions(
            monitors=default_monitors(slo=1e9, admission_ceiling=1e9,
                                      straggler_ratio=1e9))))
        assert len(result.alerts) == 0
        assert result.metrics is not None  # rules imply the registry

    def test_monitors_do_not_move_virtual_time(self):
        bare = _run(WorkloadOptions())
        monitored = _run(WorkloadOptions(
            observability=ObservabilityOptions(
                monitors=default_monitors(slo=1e-6))))
        assert monitored.makespan == bare.makespan
        for tag in bare.order:
            assert (monitored.execution(tag).response_time
                    == bare.execution(tag).response_time)

    def test_no_rules_means_no_alert_bus(self):
        result = _run(WorkloadOptions())
        assert result.alerts is None
        session = _db().session()
        session.submit(QUERIES[0])
        with pytest.raises(WorkloadError, match="no alerts"):
            session.alerts()

    def test_session_alerts_accessor(self):
        session = _db().session(options=WorkloadOptions(
            observability=ObservabilityOptions(
                monitors=(LatencySloMonitor(slo=1e-6, min_finished=1),))))
        session.submit(QUERIES[0], tag="q0")
        bus = session.alerts()
        assert isinstance(bus, AlertBus)
        assert [a.key for a in bus if a.key == "q0"]

    def test_alert_log_is_deterministic(self):
        options = WorkloadOptions(observability=ObservabilityOptions(
            monitors=default_monitors(slo=1e-6)))
        first = _run(options)
        second = _run(options)
        signature = [(a.rule, a.key, a.severity, a.fired_at, a.value,
                      a.threshold, a.resolved_at) for a in first.alerts]
        assert signature == [
            (a.rule, a.key, a.severity, a.fired_at, a.value,
             a.threshold, a.resolved_at) for a in second.alerts]
