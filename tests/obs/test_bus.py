"""Event-bus and probe-series primitives."""

import pytest

from repro.errors import ReproError
from repro.obs.bus import DEQUEUE, ENQUEUE, MEMORY, EventBus
from repro.obs.probes import (
    ACTIVE_THREADS,
    MEMORY_PENALTY,
    Series,
    queue_depth_key,
    ready_set_key,
)


class TestSeries:
    def test_sample_and_last_peak(self):
        series = Series("depth")
        series.sample(0.0, 1)
        series.sample(1.0, 3)
        series.sample(2.0, 2)
        assert len(series) == 3
        assert series.last == 2
        assert series.peak == 3

    def test_empty_series_raises(self):
        with pytest.raises(ReproError):
            Series("empty").last
        with pytest.raises(ReproError):
            Series("empty").peak

    def test_at_is_a_step_function(self):
        series = Series("depth")
        series.sample(1.0, 5)
        series.sample(2.0, 7)
        assert series.at(0.5) == 0.0       # before first sample
        assert series.at(1.0) == 5
        assert series.at(1.9) == 5
        assert series.at(2.0) == 7
        assert series.at(99.0) == 7

    def test_compacted_drops_consecutive_duplicates(self):
        series = Series("depth")
        for t, v in [(0.0, 1), (1.0, 1), (2.0, 2), (3.0, 2), (4.0, 1)]:
            series.sample(t, v)
        assert series.compacted() == [(0.0, 1), (2.0, 2), (4.0, 1)]
        assert series.to_pairs()[0] == (0.0, 1)

    def test_key_helpers(self):
        assert queue_depth_key("join") == "queue_depth/join"
        assert ready_set_key("join") == "ready_set/join"


class TestEventBus:
    def test_emit_and_query(self):
        bus = EventBus()
        bus.emit(ENQUEUE, 0.5, operation="join", thread_id=2, count=3)
        bus.emit(DEQUEUE, 0.7, operation="join", thread_id=2,
                 count=3, secondary=False)
        bus.emit(DEQUEUE, 0.9, operation="scan", thread_id=1,
                 count=1, secondary=True)
        assert bus.kind_counts() == {ENQUEUE: 1, DEQUEUE: 2}
        assert len(bus.events_of(DEQUEUE)) == 2
        assert len(bus.events_of(DEQUEUE, "join")) == 1
        assert bus.events[0].data == {"count": 3}

    def test_round_trip_totals(self):
        bus = EventBus()
        bus.emit(ENQUEUE, 0.1, operation="join", count=4)
        bus.emit(ENQUEUE, 0.2, operation="join", count=6)
        bus.emit(DEQUEUE, 0.3, operation="join", count=10, secondary=False)
        bus.emit(DEQUEUE, 0.4, operation="join", count=0, secondary=True)
        assert bus.enqueue_total("join") == 10
        assert bus.dequeue_batch_total("join") == 2
        assert bus.secondary_access_total("join") == 1
        assert bus.enqueue_total("ghost") == 0

    def test_queue_depth_probe_follows_hooks(self):
        bus = EventBus()
        bus.on_enqueue("join", 0.1)
        bus.on_enqueue("join", 0.2)
        bus.on_dequeue("join", 0.3, 2)
        depth = bus.series[queue_depth_key("join")]
        assert depth.to_pairs() == [(0.1, 1), (0.2, 2), (0.3, 0)]
        assert depth.peak == 2

    def test_add_samples_and_counts(self):
        bus = EventBus()
        assert bus.add("x", 1.0, 2) == 2
        assert bus.add("x", 2.0, -1) == 1
        assert bus.counters["x"] == 1
        assert bus.series["x"].to_pairs() == [(1.0, 2), (2.0, 1)]

    def test_count_is_scalar_only(self):
        bus = EventBus()
        bus.count("ready_notify/join")
        bus.count("ready_notify/join", 4)
        assert bus.counters["ready_notify/join"] == 5
        assert "ready_notify/join" not in bus.series

    def test_sample_active_and_memory(self):
        bus = EventBus()
        bus.sample_active(0.0, 4)
        bus.add_memory_penalty(1.0, "join", 3, 0.25)
        bus.add_memory_penalty(2.0, "join", 3, 0.25)
        assert bus.series[ACTIVE_THREADS].last == 4
        assert bus.series[MEMORY_PENALTY].last == pytest.approx(0.5)
        assert len(bus.events_of(MEMORY, "join")) == 2
