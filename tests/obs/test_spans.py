"""Span assembly and self-audit on hand-built workload event streams."""

import pytest

from repro.errors import ReproError
from repro.obs.bus import (
    QUERY_ADMIT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_GRANT,
    QUERY_SUBMIT,
    EventBus,
)
from repro.obs.spans import (
    SPAN_CANCELLED,
    SPAN_DONE,
    SPAN_TIMED_OUT,
    assemble_spans,
    verify_spans,
)


def _lifecycle_bus() -> EventBus:
    """q0 runs to completion; q1 is withdrawn from the queue."""
    bus = EventBus()
    bus.emit(QUERY_SUBMIT, 0.0, "q0", demand=4, footprint=100)
    bus.emit(QUERY_SUBMIT, 0.01, "q1", demand=2, footprint=50)
    bus.emit(QUERY_ADMIT, 0.0, "q0")
    bus.emit(QUERY_GRANT, 0.0, "q0", threads=4, reason="admission")
    bus.emit(QUERY_CANCEL, 0.02, "q1", reason="cancel", admitted=False)
    bus.emit(QUERY_FINISH, 0.5, "q0", response_time=0.5, threads=4)
    return bus


class TestAssembleSpans:
    def test_full_lifecycle(self):
        spans = assemble_spans(_lifecycle_bus())
        assert len(spans) == 2
        q0 = spans.of("q0")
        assert q0.status == SPAN_DONE
        assert q0.demand == 4
        assert q0.admitted_at == 0.0
        assert q0.latency == 0.5
        assert q0.admission_wait == 0.0
        assert [g.threads for g in q0.grants] == [4]
        assert q0.terminal_events == 1

    def test_queue_withdrawal_is_terminal(self):
        spans = assemble_spans(_lifecycle_bus())
        q1 = spans.of("q1")
        assert q1.status == SPAN_CANCELLED
        assert q1.admitted_at is None
        assert q1.finished_at == 0.02
        assert q1.terminal_events == 1

    def test_timeout_withdrawal_status(self):
        bus = EventBus()
        bus.emit(QUERY_SUBMIT, 0.0, "q0")
        bus.emit(QUERY_CANCEL, 0.1, "q0", reason="timeout", admitted=False)
        span = assemble_spans(bus).of("q0")
        assert span.status == SPAN_TIMED_OUT

    def test_non_query_events_ignored(self):
        bus = _lifecycle_bus()
        bus.emit("fault.memory", 0.05, None, factor=0.5)
        bus.emit("thread.finish", 0.3, "join", thread_id=2)
        spans = assemble_spans(bus)
        assert len(spans) == 2

    def test_fold_links_mirrored(self):
        bus = EventBus()
        bus.emit(QUERY_SUBMIT, 0.0, "host")
        bus.emit(QUERY_ADMIT, 0.0, "host")
        bus.emit(QUERY_SUBMIT, 0.0, "sub")
        bus.emit(QUERY_ADMIT, 0.0, "sub", folds={"join": "host"})
        bus.emit(QUERY_FINISH, 0.4, "host", status=SPAN_DONE)
        bus.emit(QUERY_FINISH, 0.4, "sub", status=SPAN_DONE)
        spans = assemble_spans(bus)
        assert spans.of("sub").folds == {"join": "host"}
        assert spans.of("sub").folded
        assert spans.of("host").subscribers == ["sub"]
        assert not spans.of("host").folded

    def test_duplicate_submit_rejected(self):
        bus = EventBus()
        bus.emit(QUERY_SUBMIT, 0.0, "q0")
        bus.emit(QUERY_SUBMIT, 0.1, "q0")
        with pytest.raises(ReproError):
            assemble_spans(bus)

    def test_event_before_submit_rejected(self):
        bus = EventBus()
        bus.emit(QUERY_ADMIT, 0.0, "q0")
        with pytest.raises(ReproError):
            assemble_spans(bus)

    def test_latencies_and_status_counts(self):
        spans = assemble_spans(_lifecycle_bus())
        assert spans.latencies() == [0.5, 0.01]
        assert spans.latencies(status=SPAN_DONE) == [0.5]
        assert spans.status_counts() == {"done": 1, "cancelled": 1}

    def test_unknown_tag_rejected(self):
        spans = assemble_spans(_lifecycle_bus())
        with pytest.raises(ReproError):
            spans.of("q9")


class TestVerifySpans:
    def test_clean_stream_passes(self):
        spans = assemble_spans(_lifecycle_bus())
        assert verify_spans(spans, makespan=0.5) == []

    def test_missing_terminal_flagged(self):
        bus = EventBus()
        bus.emit(QUERY_SUBMIT, 0.0, "q0")
        bus.emit(QUERY_ADMIT, 0.0, "q0")
        problems = verify_spans(assemble_spans(bus))
        assert any("terminal" in p for p in problems)

    def test_double_finish_flagged(self):
        bus = _lifecycle_bus()
        bus.emit(QUERY_FINISH, 0.6, "q0", status=SPAN_DONE)
        problems = verify_spans(assemble_spans(bus))
        assert any("2 terminal events" in p for p in problems)

    def test_finish_past_makespan_flagged(self):
        spans = assemble_spans(_lifecycle_bus())
        problems = verify_spans(spans, makespan=0.4)
        assert any("past the makespan" in p for p in problems)

    def test_fold_onto_unknown_host_flagged(self):
        bus = EventBus()
        bus.emit(QUERY_SUBMIT, 0.0, "sub")
        bus.emit(QUERY_ADMIT, 0.0, "sub", folds={"join": "ghost"})
        bus.emit(QUERY_FINISH, 0.4, "sub", status=SPAN_DONE)
        problems = verify_spans(assemble_spans(bus))
        assert any("unknown query" in p for p in problems)

    def test_status_mismatch_against_executions_flagged(self):
        class FakeExecution:
            status = SPAN_CANCELLED
            response_time = 0.5

        spans = assemble_spans(_lifecycle_bus())
        problems = verify_spans(spans, {"q0": FakeExecution(),
                                        "q1": FakeExecution()})
        assert any("span status" in p for p in problems)
