"""Series step-function semantics, edge cases, and the self-audit
under deliberate bus corruption."""

import pytest

from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    QuerySchedule,
)
from repro.errors import ReproError
from repro.lera.plans import ideal_join_plan
from repro.machine.machine import Machine
from repro.obs.bus import DEQUEUE, ENQUEUE, Event
from repro.obs.export import verify_against_metrics
from repro.obs.probes import Series


class TestEmptySeries:
    def test_at_is_zero_anywhere(self):
        series = Series("empty")
        assert series.at(0.0) == 0.0
        assert series.at(123.4) == 0.0

    def test_len_and_pairs(self):
        series = Series("empty")
        assert len(series) == 0
        assert series.to_pairs() == []
        assert series.compacted() == []

    def test_peak_and_last_raise(self):
        series = Series("empty")
        with pytest.raises(ReproError):
            series.peak
        with pytest.raises(ReproError):
            series.last


class TestStepFunction:
    @pytest.fixture
    def series(self):
        s = Series("depth")
        for t, value in ((0.0, 1.0), (1.0, 3.0), (2.0, 2.0)):
            s.sample(t, value)
        return s

    def test_before_first_sample(self, series):
        assert series.at(-0.5) == 0.0

    def test_at_exact_boundaries(self, series):
        # at() is right-continuous: the value at a sample time is the
        # value that sample set.
        assert series.at(0.0) == 1.0
        assert series.at(1.0) == 3.0
        assert series.at(2.0) == 2.0

    def test_between_samples(self, series):
        assert series.at(0.5) == 1.0
        assert series.at(1.999) == 3.0

    def test_at_and_beyond_last_boundary(self, series):
        # The step function extends flat past the last sample.
        assert series.at(2.0) == 2.0
        assert series.at(100.0) == 2.0
        assert series.at(100.0) == series.last

    def test_peak(self, series):
        assert series.peak == 3.0


class TestRepeatedTimestamps:
    def test_last_sample_at_a_time_wins(self):
        # Discrete-event ties: several updates can land on the same
        # virtual instant; the final state at that instant is what the
        # step function must report.
        series = Series("ties")
        series.sample(1.0, 5.0)
        series.sample(1.0, 7.0)
        series.sample(1.0, 4.0)
        assert series.at(1.0) == 4.0
        assert series.at(2.0) == 4.0
        assert series.at(0.9) == 0.0
        assert series.peak == 7.0

    def test_compaction_keeps_value_changes_only(self):
        series = Series("dups")
        for t, value in ((0.0, 1.0), (1.0, 1.0), (1.0, 2.0),
                         (2.0, 2.0), (3.0, 1.0)):
            series.sample(t, value)
        assert series.compacted() == [(0.0, 1.0), (1.0, 2.0), (3.0, 1.0)]


class TestSelfAuditCorruption:
    """verify_against_metrics must notice a tampered bus."""

    @pytest.fixture
    def observed(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                               "key", "key")
        executor = Executor(Machine.uniform(processors=8),
                            ExecutionOptions(
                                observability=ObservabilityOptions(
                                    observe=True)))
        return executor.execute(plan, QuerySchedule.for_plan(plan, 4))

    def test_clean_bus_passes(self, observed):
        assert verify_against_metrics(observed) == []

    def test_dropped_dequeue_detected(self, observed):
        events = observed.obs.events
        index = next(i for i, e in enumerate(events) if e.kind == DEQUEUE)
        del events[index]
        problems = verify_against_metrics(observed)
        assert any("dequeue_batches" in p for p in problems)

    def test_forged_enqueue_detected(self, observed):
        operation = next(iter(observed.operations))
        observed.obs.events.append(
            Event(ENQUEUE, 0.0, operation, 0, {"count": 1}))
        problems = verify_against_metrics(observed)
        assert any("enqueues" in p and operation in p for p in problems)
