"""Exporters: JSONL round-trip, Chrome trace structure, self-audit."""

import json

import pytest

from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    QuerySchedule,
)
from repro.errors import ReproError
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.obs.export import (
    SCHEMA_VERSION,
    chrome_trace,
    jsonl_records,
    metrics_snapshot,
    read_jsonl,
    verify_against_metrics,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.probes import ACTIVE_THREADS, queue_depth_key


def _observed(plan, threads=4, strategy="random"):
    executor = Executor(Machine.uniform(processors=8),
                        ExecutionOptions(
                            observability=ObservabilityOptions(observe=True)))
    return executor.execute(plan,
                            QuerySchedule.for_plan(plan, threads, strategy))


@pytest.fixture
def observed(join_db):
    plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
    return _observed(plan)


class TestSelfAudit:
    def test_bus_counts_match_metrics(self, observed):
        assert verify_against_metrics(observed) == []

    def test_triggered_plan_consistent_too(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        assert verify_against_metrics(_observed(plan, strategy="lpt")) == []

    def test_unobserved_execution_rejected(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform(processors=8)).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        with pytest.raises(ReproError):
            metrics_snapshot(execution)
        with pytest.raises(ReproError):
            list(jsonl_records(execution))


class TestJsonl:
    def test_round_trip_counts(self, observed, tmp_path):
        path = tmp_path / "events.jsonl"
        count = write_jsonl(observed, path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == count
        assert records[0]["type"] == "meta"
        assert records[0]["response_time"] == pytest.approx(
            observed.response_time)
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert set(by_type) == {"meta", "op", "event", "span", "sample",
                                "counter"}
        assert records[0]["schema"] == SCHEMA_VERSION
        # the re-parsed log must agree with the metrics aggregates
        for op_record in by_type["op"]:
            metrics = observed.operation(op_record["name"])
            assert op_record["enqueues"] == metrics.enqueues
            assert op_record["dequeue_batches"] == metrics.dequeue_batches
            assert op_record["secondary_accesses"] == metrics.secondary_accesses
        dequeues = [r for r in by_type["event"]
                    if r["kind"] == "queue.dequeue" and r["op"] == "join"]
        assert len(dequeues) == observed.operation("join").dequeue_batches

    def test_samples_are_compacted(self, observed):
        samples = [r for r in jsonl_records(observed)
                   if r["type"] == "sample" and r["name"] == ACTIVE_THREADS]
        values = [r["value"] for r in samples]
        assert all(a != b for a, b in zip(values, values[1:]))


class TestReadJsonl:
    """read_jsonl must be the exact inverse of write_jsonl."""

    @pytest.fixture
    def reloaded(self, observed, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(observed, path)
        return read_jsonl(path)

    def test_schema_and_meta(self, observed, reloaded):
        assert reloaded.schema == SCHEMA_VERSION
        assert reloaded.response_time == observed.response_time
        assert reloaded.startup_time == observed.startup_time
        assert reloaded.meta["total_threads"] == observed.total_threads

    def test_events_round_trip_to_event_objects(self, observed, reloaded):
        # Event is a frozen dataclass, so this compares kind, time,
        # operation, thread and the full payload of every event.
        assert reloaded.events == list(observed.obs.events)

    def test_spans_round_trip_to_trace(self, observed, reloaded):
        assert reloaded.trace.events == observed.trace.events

    def test_series_round_trip_compacted(self, observed, reloaded):
        assert set(reloaded.series) == set(observed.obs.series)
        for name, series in observed.obs.series.items():
            assert reloaded.series[name].to_pairs() == series.compacted()

    def test_counters_round_trip(self, observed, reloaded):
        assert reloaded.counters == dict(observed.obs.counters)

    def test_op_records_round_trip(self, observed, reloaded):
        by_name = {record["name"]: record for record in reloaded.ops}
        assert set(by_name) == set(observed.operations)
        for name, metrics in observed.operations.items():
            assert by_name[name]["busy_time"] == metrics.busy_time
            assert by_name[name]["queue_activations"] == \
                list(metrics.queue_activations)

    def test_missing_meta_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "kind": "op.start", "t": 0.0}\n')
        with pytest.raises(ReproError, match="meta header"):
            read_jsonl(path)

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"type": "meta", "schema": SCHEMA_VERSION + 1,
             "response_time": 1.0, "startup_time": 0.0,
             "total_threads": 1, "dilation": 1.0}) + "\n")
        with pytest.raises(ReproError, match="newer"):
            read_jsonl(path)

    def test_unknown_record_type_rejected(self, observed, tmp_path):
        path = tmp_path / "mystery.jsonl"
        write_jsonl(observed, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "hologram"}\n')
        with pytest.raises(ReproError, match="hologram"):
            read_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            read_jsonl(path)


class TestChromeTrace:
    def test_document_loads_and_has_tracks(self, observed, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(observed, path)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert len(events) == count
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        assert all(e["pid"] == 1 for e in events)

    def test_one_named_track_per_thread(self, observed):
        document = chrome_trace(observed)
        names = [e for e in document["traceEvents"] if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        span_tids = {e["tid"] for e in document["traceEvents"]
                     if e["ph"] == "X"}
        assert {e["tid"] for e in names} == span_tids
        assert len(names) == observed.total_threads

    def test_spans_use_microseconds(self, observed):
        document = chrome_trace(observed)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        start, end = observed.trace.span
        assert min(s["ts"] for s in spans) == pytest.approx(start * 1e6)
        assert max(s["ts"] + s["dur"] for s in spans) == pytest.approx(
            end * 1e6)

    def test_counter_tracks_cover_probes(self, observed):
        document = chrome_trace(observed)
        counters = {e["name"] for e in document["traceEvents"]
                    if e["ph"] == "C"}
        assert ACTIVE_THREADS in counters
        assert queue_depth_key("join") in counters


class TestSnapshot:
    def test_snapshot_extends_summary(self, observed):
        text = metrics_snapshot(observed)
        assert "observed execution:" in text
        assert "bus events" in text
        assert "active threads: peak" in text
        assert "join" in text and "enqueues=" in text

    def test_ready_churn_reported_at_high_degree(self):
        # The ready index only engages at READY_INDEX_MIN_INSTANCES
        # queues, so its notify/stale counters need a wide operation.
        from repro.bench.workloads import make_join_database
        db = make_join_database(2000, 200, degree=96, theta=0.0)
        plan = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        execution = _observed(plan, threads=8)
        text = metrics_snapshot(execution)
        assert "ready_notify/join" in text
        assert verify_against_metrics(execution) == []
