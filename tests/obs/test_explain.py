"""Scheduler explain: passive recording of the four decisions."""

import pytest

from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.obs.explain import (
    STEP_CHAIN_SPLIT,
    STEP_OPERATION_SPLIT,
    STEP_STRATEGY,
    STEP_THREAD_COUNT,
    STEPS,
    ScheduleExplanation,
)
from repro.scheduler.adaptive import AdaptiveScheduler


@pytest.fixture
def machine():
    return Machine.uniform(processors=16)


class TestRecording:
    def test_all_four_steps_recorded(self, join_db, machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, explain=explanation)
        for step in STEPS:
            assert explanation.for_step(step), f"no decision for {step}"

    def test_one_strategy_decision_per_operation(self, join_db, machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, explain=explanation)
        targets = {d.target for d in explanation.for_step(STEP_STRATEGY)}
        assert targets == {node.name for node in plan.nodes}

    def test_pinned_threads_recorded_as_fixed(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, total_threads=8,
                                            explain=explanation)
        decision, = explanation.for_step(STEP_THREAD_COUNT)
        assert decision.chosen == 8
        assert "fixed by caller" in decision.reason

    def test_chosen_values_match_the_schedule(self, join_db, machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        schedule = AdaptiveScheduler(machine).schedule(plan,
                                                       explain=explanation)
        for decision in explanation.for_step(STEP_OPERATION_SPLIT):
            assert schedule.of(decision.target).threads == decision.chosen
        for decision in explanation.for_step(STEP_STRATEGY):
            assert schedule.of(decision.target).strategy == decision.chosen

    def test_inputs_carry_driving_numbers(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, explain=explanation)
        step1, = explanation.for_step(STEP_THREAD_COUNT)
        assert {"work", "processors", "ceiling"} <= set(step1.inputs)
        for decision in explanation.for_step(STEP_CHAIN_SPLIT):
            assert "subtree_complexity" in decision.inputs


class TestPassivity:
    def test_schedule_identical_with_and_without_explain(self, join_db,
                                                         machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        plain = AdaptiveScheduler(machine).schedule(plan)
        explained = AdaptiveScheduler(machine).schedule(
            plan, explain=ScheduleExplanation())
        assert plain.operations == explained.operations


class TestRendering:
    def test_render_names_every_step(self, join_db, machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, explain=explanation)
        text = explanation.render()
        for fragment in ("step 1", "step 2", "step 3", "step 4",
                         "chain:", "join"):
            assert fragment in text

    def test_empty_explanation_renders(self):
        assert "no decisions" in ScheduleExplanation().render()

    def test_to_json_round_trips(self, join_db, machine):
        import json
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        explanation = ScheduleExplanation()
        AdaptiveScheduler(machine).schedule(plan, explain=explanation)
        parsed = json.loads(json.dumps(explanation.to_json()))
        assert len(parsed) == len(explanation)
        assert parsed[0]["step"] == STEP_THREAD_COUNT
