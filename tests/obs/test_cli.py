"""The ``python -m repro`` observed-run CLI path."""

import json

from repro.__main__ import main, observed_run


class TestObservedRun:
    def test_writes_all_exports(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.txt"
        code = observed_run(
            "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
            str(trace), str(events), str(metrics), explain=True, threads=8)
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule explanation:" in out
        assert "observed execution:" in out
        document = json.loads(trace.read_text())
        assert document["traceEvents"]
        lines = events.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert "observed execution:" in metrics.read_text()

    def test_main_routes_observability_flags(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = main(["--events-out", str(events), "--threads", "8"])
        assert code == 0
        assert events.exists()

    def test_explain_alone_runs_without_files(self, capsys):
        assert main(["--explain", "--threads", "8"]) == 0
        assert "step 4" in capsys.readouterr().out
