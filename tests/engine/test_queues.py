"""Activation queues: FIFO order, ready times, capacity."""

import pytest

from repro.engine.queues import ActivationQueue
from repro.errors import ExecutionError
from repro.lera.activation import trigger, tuple_activation


def _queue(kind="pipelined", capacity=None, estimate=0.0):
    return ActivationQueue("op", 0, kind, capacity=capacity,
                           cost_estimate=estimate)


class TestEnqueueDequeue:
    def test_starts_empty(self):
        queue = _queue()
        assert queue.is_empty
        assert not queue.has_ready(100.0)
        assert queue.next_ready_time() is None

    def test_fifo_within_same_ready_time(self):
        queue = _queue()
        for i in range(5):
            queue.enqueue(1.0, tuple_activation(0, (i,)))
        batch = queue.dequeue_ready(1.0, limit=5)
        assert [a.row[0] for a in batch] == [0, 1, 2, 3, 4]

    def test_ready_time_orders_across_producers(self):
        queue = _queue()
        queue.enqueue(2.0, tuple_activation(0, ("late",)))
        queue.enqueue(1.0, tuple_activation(0, ("early",)))
        batch = queue.dequeue_ready(3.0, limit=2)
        assert [a.row[0] for a in batch] == ["early", "late"]

    def test_future_activations_not_ready(self):
        queue = _queue()
        queue.enqueue(5.0, trigger(0))
        assert not queue.has_ready(4.999)
        assert queue.has_ready(5.0)
        assert queue.next_ready_time() == 5.0

    def test_dequeue_respects_limit(self):
        queue = _queue()
        for i in range(10):
            queue.enqueue(0.0, tuple_activation(0, (i,)))
        batch = queue.dequeue_ready(1.0, limit=3)
        assert len(batch) == 3
        assert len(queue) == 7

    def test_dequeue_stops_at_future_items(self):
        queue = _queue()
        queue.enqueue(1.0, tuple_activation(0, ("a",)))
        queue.enqueue(9.0, tuple_activation(0, ("b",)))
        batch = queue.dequeue_ready(2.0, limit=10)
        assert len(batch) == 1
        assert queue.next_ready_time() == 9.0

    def test_counters(self):
        queue = _queue()
        queue.enqueue(0.0, trigger(0))
        queue.dequeue_ready(1.0, limit=1)
        assert queue.enqueued == 1
        assert queue.consumed == 1


class TestCapacity:
    def test_unbounded_never_over(self):
        queue = _queue()
        for i in range(1000):
            queue.enqueue(0.0, tuple_activation(0, (i,)))
        assert not queue.over_capacity

    def test_over_capacity_flag(self):
        queue = _queue(capacity=2)
        queue.enqueue(0.0, tuple_activation(0, (1,)))
        assert not queue.over_capacity
        queue.enqueue(0.0, tuple_activation(0, (2,)))
        assert queue.over_capacity

    def test_capacity_must_be_positive(self):
        with pytest.raises(ExecutionError):
            _queue(capacity=0)


class TestMetadata:
    def test_cost_estimate_stored(self):
        assert _queue(estimate=3.5).cost_estimate == 3.5

    def test_repr_mentions_operation(self):
        assert "op" in repr(_queue())
