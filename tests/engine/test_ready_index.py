"""Ready index: exact equivalence with the legacy linear queue scan.

The index replaces the simulator's O(d) per-step scan; every test here
checks it against a straight reimplementation of that scan, including
a randomized enqueue/dequeue/query fuzz over drifting thread clocks.
"""

import random

from repro.engine.dbfuncs import make_dbfunc
from repro.engine.operation import (
    READY_INDEX_MIN_INSTANCES,
    OperationRuntime,
)
from repro.engine.ready_index import ReadyIndex
from repro.engine.strategies import make_strategy
from repro.lera.activation import trigger, tuple_activation
from repro.lera.graph import LeraNode
from repro.lera.operators import ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _operation(instances=12, threads=3, allow_secondary=True,
               with_index=True):
    """A triggered operation with its pool built and the index attached.

    The index is attached explicitly so the tests are independent of
    the READY_INDEX_MIN_INSTANCES wall-clock gate.
    """
    fragments = [Fragment("R", i, SCHEMA, [(i,)]) for i in range(instances)]
    node = LeraNode("op", ScanFilterSpec(fragments, TRUE, SCHEMA))
    operation = OperationRuntime(node, make_dbfunc(node.spec, DEFAULT_COSTS),
                                 make_strategy("random"), cache_size=1,
                                 allow_secondary=allow_secondary)
    operation.build_pool(list(range(threads)), start_time=0.0)
    if with_index and operation.ready_index is None:
        operation.ready_index = ReadyIndex(operation)
    return operation


def _scan_reference(thread, now):
    """The legacy per-step scan, restated (mirrors Simulator._scan_select)."""
    operation = thread.operation
    ready = []
    polls = 0
    future = None
    for queue in thread.main_queues:
        if queue.has_ready(now):
            ready.append(queue)
        else:
            polls += 1
            t = queue.next_ready_time()
            if t is not None and (future is None or t < future):
                future = t
    used_secondary = False
    if not ready and operation.allow_secondary:
        main_set = thread.main_queue_set
        for queue in operation.queues:
            if queue.instance in main_set:
                continue
            if queue.has_ready(now):
                ready.append(queue)
            else:
                polls += 1
                t = queue.next_ready_time()
                if t is not None and (future is None or t < future):
                    future = t
        used_secondary = True
    return ready, polls, future, used_secondary


def _assert_matches_scan(operation, now):
    """Index selection == scan selection for every thread of the pool."""
    index = operation.ready_index
    for thread in operation.threads:
        want_ready, want_polls, want_future, want_secondary = \
            _scan_reference(thread, now)
        got_ready, got_polls, got_secondary = index.select(
            thread, now, operation.allow_secondary)
        assert got_ready == want_ready, f"thread {thread.pool_index} @ {now}"
        assert got_polls == want_polls, f"thread {thread.pool_index} @ {now}"
        if not want_ready:
            # The simulator consults the future time only on an empty
            # selection; the scan's future skips ready queues, so the
            # two only coincide in that (empty) case.
            assert got_secondary == want_secondary
            assert index.next_ready_time(
                thread, operation.allow_secondary) == want_future


class TestSelection:
    def test_empty_operation_selects_nothing(self):
        operation = _operation()
        _assert_matches_scan(operation, now=10.0)

    def test_ready_mains_in_instance_order(self):
        operation = _operation(instances=12, threads=3)
        # Thread 0's mains are instances 0, 3, 6, 9; make three ready
        # out of order.
        for instance in (9, 0, 6):
            operation.queues[instance].enqueue(1.0, trigger(instance))
        ready, polls, used_secondary = operation.ready_index.select(
            operation.threads[0], 2.0, True)
        assert [q.instance for q in ready] == [0, 6, 9]
        assert polls == 1          # instance 3 scanned empty
        assert not used_secondary
        _assert_matches_scan(operation, 2.0)

    def test_future_main_not_selected(self):
        operation = _operation()
        operation.queues[0].enqueue(5.0, trigger(0))
        ready, polls, _ = operation.ready_index.select(
            operation.threads[0], 4.999, True)
        assert ready == []
        assert polls == 12         # mains AND secondaries polled empty
        assert operation.ready_index.next_ready_time(
            operation.threads[0], True) == 5.0

    def test_secondary_fallback_excludes_mains(self):
        operation = _operation(instances=12, threads=3)
        # Nothing ready for thread 0; instances 1 and 5 (mains of
        # threads 1 and 2) are ready.
        operation.queues[1].enqueue(1.0, trigger(1))
        operation.queues[5].enqueue(1.0, trigger(5))
        ready, polls, used_secondary = operation.ready_index.select(
            operation.threads[0], 2.0, True)
        assert [q.instance for q in ready] == [1, 5]
        assert used_secondary
        # 4 own mains + 6 not-ready secondaries were scanned empty.
        assert polls == 10
        _assert_matches_scan(operation, 2.0)

    def test_main_preferred_over_earlier_secondary(self):
        operation = _operation(instances=12, threads=3)
        operation.queues[1].enqueue(0.5, trigger(1))   # other pool, earlier
        operation.queues[3].enqueue(1.0, trigger(3))   # own main, later
        ready, _, used_secondary = operation.ready_index.select(
            operation.threads[0], 2.0, True)
        assert [q.instance for q in ready] == [3]
        assert not used_secondary

    def test_no_secondary_when_disallowed(self):
        operation = _operation(allow_secondary=False)
        operation.queues[1].enqueue(1.0, trigger(1))   # not thread 0's main
        ready, polls, used_secondary = operation.ready_index.select(
            operation.threads[0], 2.0, False)
        assert ready == []
        assert polls == 4
        assert not used_secondary
        # Without secondary access the thread only waits on its mains.
        assert operation.ready_index.next_ready_time(
            operation.threads[0], False) is None
        _assert_matches_scan(operation, 2.0)


class TestIncrementalMaintenance:
    def test_dequeue_retires_ready_entry(self):
        operation = _operation()
        queue = operation.queues[0]
        queue.enqueue(1.0, trigger(0))
        thread = operation.threads[0]
        assert operation.ready_index.select(thread, 2.0, True)[0] == [queue]
        queue.dequeue_ready(2.0, limit=1)
        assert operation.ready_index.select(thread, 2.0, True)[0] == []
        _assert_matches_scan(operation, 2.0)

    def test_dequeue_reveals_next_head(self):
        operation = _operation()
        queue = operation.queues[0]
        queue.enqueue(1.0, tuple_activation(0, ("a",)))
        queue.enqueue(5.0, tuple_activation(0, ("b",)))
        queue.dequeue_ready(2.0, limit=1)
        thread = operation.threads[0]
        assert operation.ready_index.select(thread, 2.0, True)[0] == []
        assert operation.ready_index.next_ready_time(thread, True) == 5.0
        assert operation.ready_index.select(thread, 5.0, True)[0] == [queue]

    def test_earlier_enqueue_displaces_head(self):
        operation = _operation()
        queue = operation.queues[0]
        queue.enqueue(9.0, tuple_activation(0, ("late",)))
        thread = operation.threads[0]
        assert operation.ready_index.next_ready_time(thread, True) == 9.0
        queue.enqueue(3.0, tuple_activation(0, ("early",)))
        assert operation.ready_index.next_ready_time(thread, True) == 3.0
        # The stale 9.0 entry must not resurface after consuming 3.0.
        queue.dequeue_ready(4.0, limit=1)
        assert operation.ready_index.next_ready_time(thread, True) == 9.0
        _assert_matches_scan(operation, 4.0)

    def test_ready_set_member_rechecked_against_slower_clock(self):
        operation = _operation()
        queue = operation.queues[0]
        queue.enqueue(5.0, trigger(0))
        fast, slow = operation.threads[0], operation.threads[0]
        # A query at now=10 admits the entry to the ready set ...
        assert operation.ready_index.select(fast, 10.0, True)[0] == [queue]
        # ... but a query at now=4 must still see it as not ready.
        assert operation.ready_index.select(slow, 4.0, True)[0] == []
        _assert_matches_scan(operation, 4.0)


class TestGate:
    def test_index_attached_above_threshold(self):
        operation = _operation(instances=READY_INDEX_MIN_INSTANCES,
                               threads=4, with_index=False)
        assert operation.ready_index is not None
        assert all(q.listener is operation.ready_index
                   for q in operation.queues)

    def test_small_degree_stays_on_scan(self):
        operation = _operation(instances=READY_INDEX_MIN_INSTANCES - 1,
                               threads=4, with_index=False)
        assert operation.ready_index is None
        assert all(q.listener is None for q in operation.queues)


class TestFuzzAgainstScan:
    def test_randomized_traffic_matches_scan_exactly(self):
        rng = random.Random(20250805)
        operation = _operation(instances=30, threads=4)
        queues = operation.queues
        for step in range(3000):
            action = rng.random()
            if action < 0.45:
                queue = queues[rng.randrange(len(queues))]
                queue.enqueue(round(rng.uniform(0.0, 50.0), 3),
                              tuple_activation(queue.instance, (step,)))
            elif action < 0.75:
                queue = queues[rng.randrange(len(queues))]
                queue.dequeue_ready(round(rng.uniform(0.0, 50.0), 3),
                                    limit=rng.randrange(1, 4))
            else:
                _assert_matches_scan(operation,
                                     now=round(rng.uniform(0.0, 50.0), 3))
        _assert_matches_scan(operation, now=60.0)
