"""Failure injection and engine edge cases."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.dbfuncs import make_dbfunc
from repro.engine.executor import Executor, QuerySchedule
from repro.engine.operation import OperationRuntime
from repro.engine.simulator import Simulator
from repro.engine.strategies import make_strategy
from repro.errors import ExecutionError
from repro.lera.graph import LeraNode
from repro.lera.operators import PipelinedJoinSpec
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


class TestDeadlockDetection:
    def test_pipelined_op_with_no_producer_deadlocks(self):
        """A mis-wired pipelined operation (producers never close it)
        is detected instead of hanging."""
        fragments = [Fragment("A", 0, SCHEMA, [(0, 0)])]
        node = LeraNode("orphan", PipelinedJoinSpec(
            fragments, "key", SCHEMA, "key", stream_cardinality=1))
        machine = Machine.uniform(processors=4)
        runtime = OperationRuntime(node, make_dbfunc(node.spec, machine.costs),
                                   make_strategy("random"), cache_size=1)
        runtime.producers_remaining = 1      # a producer that never comes
        runtime.build_pool([0], start_time=0.0)
        with pytest.raises(ExecutionError, match="deadlock"):
            Simulator(machine).run_wave([runtime])


class TestRouterWiring:
    def test_consumer_without_router_raises(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        executor = Executor(Machine.uniform(processors=4))
        # sabotage: executor wires the router; remove it post-build by
        # running a custom build path
        runtimes = executor.build_runtimes(
            plan, QuerySchedule.for_plan(plan, 2))
        executor.wire_pipelines(plan, runtimes)
        runtimes["transmit"].router = None
        for name, runtime in runtimes.items():
            runtime.build_pool([0, 1] if name == "transmit" else [2, 3], 0.0)
            if runtime.node.trigger_mode == "triggered":
                runtime.seed_triggers(0.0)
        with pytest.raises(ExecutionError, match="router"):
            Simulator(executor.machine).run_wave(list(runtimes.values()))


class TestSlicedModeEquivalence:
    """The sliced (over-subscribed) path must agree with the whole-
    activation path on everything but timing."""

    def test_results_identical(self):
        database = make_join_database(2000, 200, degree=10, theta=0.7)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = QuerySchedule.for_plan(plan, 8)
        whole = Executor(Machine.uniform(processors=8)).execute(
            plan, schedule)      # threads == processors: whole path
        sliced = Executor(Machine.uniform(processors=4)).execute(
            plan, schedule)      # threads > processors: sliced path
        assert sorted(whole.result_rows) == sorted(sliced.result_rows)
        assert whole.total_activations == sliced.total_activations

    def test_sliced_never_faster(self):
        database = make_join_database(2000, 200, degree=10, theta=0.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = QuerySchedule.for_plan(plan, 8)
        whole = Executor(Machine.uniform(processors=8)).execute(
            plan, schedule).response_time
        sliced = Executor(Machine.uniform(processors=4)).execute(
            plan, schedule).response_time
        assert sliced >= whole

    def test_work_is_undilated_in_both_modes(self):
        database = make_join_database(1000, 100, degree=5, theta=0.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = QuerySchedule.for_plan(plan, 4)
        whole = Executor(Machine.uniform(processors=8)).execute(plan, schedule)
        sliced = Executor(Machine.uniform(processors=2)).execute(plan, schedule)
        assert whole.work == pytest.approx(sliced.work)


class TestDegenerateShapes:
    def test_single_fragment_single_thread(self):
        database = make_join_database(100, 10, degree=1, theta=0.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        execution = Executor(Machine.uniform(processors=1)).execute(
            plan, QuerySchedule.for_plan(plan, 1))
        assert execution.result_cardinality == database.expected_matches

    def test_empty_join_operands(self):
        database = make_join_database(0, 0, degree=4, theta=0.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        execution = Executor(Machine.uniform(processors=4)).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == 0

    def test_one_processor_machine(self):
        database = make_join_database(500, 50, degree=5, theta=0.5)
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        execution = Executor(Machine.uniform(processors=1)).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == database.expected_matches
        assert execution.dilation > 1.0
