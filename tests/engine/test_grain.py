"""The chunked-trigger (grain of parallelism) extension.

The paper's conclusion proposes "allowing the choice of the grain of
parallelism independent of the operation semantics": with ``grain >
1`` each triggered join instance is split into sub-activations over
outer-fragment slices, making a triggered operator balance like a
pipelined one without repartitioning.
"""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import Executor, QuerySchedule
from repro.errors import PlanError
from repro.lera.activation import chunk_trigger
from repro.lera.operators import JOIN_HASH, JOIN_NESTED_LOOP, JOIN_TEMP_INDEX
from repro.lera.plans import ideal_join_plan
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine


def _run(database, threads, grain, algorithm=JOIN_NESTED_LOOP,
         strategy="lpt"):
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key",
                           algorithm=algorithm, grain=grain)
    executor = Executor(Machine.uniform(processors=16))
    return executor.execute(plan,
                            QuerySchedule.for_plan(plan, threads, strategy))


class TestChunkBounds:
    def test_grain_one_covers_fragment(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        spec = plan.node("join").spec
        cardinality = join_db.entry_a.fragments[0].cardinality
        assert spec.chunk_bounds(0, None) == (0, cardinality)

    def test_chunks_tile_the_fragment(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                               grain=4)
        spec = plan.node("join").spec
        cardinality = join_db.entry_a.fragments[0].cardinality
        covered = []
        for chunk in range(4):
            low, high = spec.chunk_bounds(0, chunk)
            covered.extend(range(low, high))
        assert covered == list(range(cardinality))

    def test_out_of_range_chunk_rejected(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                               grain=2)
        with pytest.raises(PlanError):
            plan.node("join").spec.chunk_bounds(0, 5)

    def test_zero_grain_rejected(self, join_db):
        with pytest.raises(PlanError):
            ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                            grain=0)


class TestEstimates:
    def test_per_activation_estimate_scales_down(self, join_db):
        coarse = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                 "key", "key").node("join").spec
        fine = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                               "key", "key", grain=5).node("join").spec
        assert fine.estimated_instance_costs(DEFAULT_COSTS)[0] == pytest.approx(
            coarse.estimated_instance_costs(DEFAULT_COSTS)[0] / 5)

    def test_total_complexity_unchanged_nested_loop(self, join_db):
        coarse = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                 "key", "key").node("join").spec
        fine = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                               "key", "key", grain=5).node("join").spec
        assert fine.total_complexity(DEFAULT_COSTS) == pytest.approx(
            coarse.total_complexity(DEFAULT_COSTS))

    def test_activation_count(self, join_db):
        spec = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                               grain=3).node("join").spec
        assert spec.activations_per_instance() == 3
        assert spec.estimated_activations() == 3 * join_db.degree


class TestExecution:
    @pytest.mark.parametrize("algorithm", [JOIN_NESTED_LOOP, JOIN_TEMP_INDEX,
                                           JOIN_HASH])
    def test_results_identical_to_unchunked(self, algorithm):
        database = make_join_database(1000, 100, degree=10, theta=0.7)
        plain = _run(database, 4, grain=1, algorithm=algorithm)
        chunked = _run(database, 4, grain=4, algorithm=algorithm)
        assert sorted(plain.result_rows) == sorted(chunked.result_rows)

    def test_activation_counts(self):
        database = make_join_database(500, 50, degree=5, theta=0.0)
        execution = _run(database, 2, grain=8)
        assert execution.operation("join").activations == 5 * 8

    def test_grain_rescues_skewed_triggered_join(self):
        """The headline: at low degree with heavy skew, the grain does
        what a higher degree of partitioning would do."""
        database = make_join_database(20_000, 2000, degree=10, theta=1.0)
        coarse = _run(database, 10, grain=1)
        fine = _run(database, 10, grain=16)
        # grain=1: the response is pinned by the largest fragment
        pmax = coarse.operation("join").profile().max_cost
        assert coarse.response_time >= pmax
        # grain=16: far closer to the ideal time
        ideal = fine.operation("join").profile().total_cost / 10
        assert fine.response_time < coarse.response_time * 0.5
        assert fine.response_time < ideal * 1.3 + fine.startup_time

    def test_temp_index_grain_costs_more_total_work(self):
        """Finer grain is not free with an index: every chunk re-probes
        the inner operand against its slice index."""
        database = make_join_database(5000, 500, degree=5, theta=0.0)
        plain = _run(database, 4, grain=1, algorithm=JOIN_TEMP_INDEX)
        chunked = _run(database, 4, grain=8, algorithm=JOIN_TEMP_INDEX)
        assert chunked.work > plain.work

    def test_chunk_trigger_activation(self):
        activation = chunk_trigger(3, 2)
        assert activation.is_control
        assert activation.instance == 3
        assert activation.chunk == 2
