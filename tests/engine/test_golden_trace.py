"""Golden execution traces: the ready index must not move virtual time.

Reduced-scale versions of the paper's Figure 13 (IdealJoin under Zipf
skew, LPT vs Random) and Figure 14 (AssocJoin pipeline) workloads run
twice — once with the ready index, once with the legacy linear scan —
and must produce *bit-identical* executions: response time, per-op
poll/secondary/dequeue/enqueue counters, and result rows.  On top of
the pairwise check, the headline numbers are pinned as literals so a
change that drifts BOTH selection paths at once still trips.

The degree (120) is above READY_INDEX_MIN_INSTANCES so the index is
actually engaged; the cardinalities are scaled down to keep this in
the tier-1 budget (the full matrix lives in repro.bench.perf_baseline).
"""

import pytest

from repro.bench.runners import default_machine
from repro.bench.workloads import make_join_database
from repro.engine.executor import ExecutionOptions, Executor
from repro.engine.operation import READY_INDEX_MIN_INSTANCES
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.scheduler.adaptive import AdaptiveScheduler

DEGREE = 120
CARD_A = 10_000
CARD_B = 1_000
THREADS = 10

#: (plan kind, Zipf theta, strategy) -> pinned (response_time, polls of
#: the join operation).  Captured from the pre-index engine; the index
#: reproduces them exactly.
GOLDEN = {
    ("ideal", 0.5, "lpt"): (0.5249889999999998, 2867),
    ("ideal", 0.5, "random"): (0.5436459999999997, 2697),
    ("assoc", 0.0, "lpt"): (1.5369009999999996, 285013),
    ("assoc", 0.0, "random"): (1.536733, 284467),
}


def _execute(database, kind, strategy, use_ready_index):
    machine = default_machine()
    builder = ideal_join_plan if kind == "ideal" else assoc_join_plan
    plan = builder(database.entry_a, database.entry_b, "key", "key")
    schedule = AdaptiveScheduler(machine).schedule(plan, THREADS)
    schedule = schedule.with_strategy("join", strategy)
    executor = Executor(machine, ExecutionOptions(
        seed=0, use_ready_index=use_ready_index))
    return executor.execute(plan, schedule)


def _trace(execution):
    """Everything the queue discipline can influence, in one structure."""
    return {
        "response_time": execution.response_time,
        "rows": sorted(execution.result_rows),
        "operations": {
            name: (m.polls, m.secondary_accesses, m.dequeue_batches,
                   m.enqueues, m.finished_at)
            for name, m in execution.operations.items()
        },
    }


@pytest.mark.parametrize("kind,theta,strategy", sorted(GOLDEN))
def test_index_and_scan_produce_identical_traces(kind, theta, strategy):
    assert DEGREE >= READY_INDEX_MIN_INSTANCES  # the index is engaged
    database = make_join_database(CARD_A, CARD_B, DEGREE, theta)
    with_index = _execute(database, kind, strategy, use_ready_index=True)
    with_scan = _execute(database, kind, strategy, use_ready_index=False)
    assert _trace(with_index) == _trace(with_scan)

    golden_response, golden_polls = GOLDEN[(kind, theta, strategy)]
    assert with_index.response_time == golden_response
    assert with_index.operations["join"].polls == golden_polls
    assert with_index.result_cardinality == database.expected_matches
