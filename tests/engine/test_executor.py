"""Executor: schedules, startup accounting, placement, waves."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    OperationSchedule,
    PLACEMENT_COLD,
    PLACEMENT_WARM,
    QuerySchedule,
)
from repro.errors import ExecutionError
from repro.lera.plans import (
    assoc_join_plan,
    ideal_join_plan,
    materialized,
    selection_plan,
)
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.storage.partitioning import PartitioningSpec


class TestSchedules:
    def test_for_plan_uniform(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = QuerySchedule.for_plan(plan, 3)
        assert schedule.of("transmit").threads == 3
        assert schedule.of("join").threads == 3

    def test_missing_operation_rejected(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = QuerySchedule({"transmit": OperationSchedule(1)})
        with pytest.raises(ExecutionError, match="no schedule"):
            Executor(Machine.uniform()).execute(plan, schedule)

    def test_with_strategy_replaces(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = QuerySchedule.for_plan(plan, 2).with_strategy("join", "lpt")
        assert schedule.of("join").strategy == "lpt"

    def test_zero_threads_rejected(self):
        with pytest.raises(ExecutionError):
            OperationSchedule(0)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionOptions(placement="everywhere")


class TestStartup:
    def test_startup_counts_threads_and_queues(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 4))
        expected = (4 * DEFAULT_COSTS.thread_create
                    + join_db.degree * DEFAULT_COSTS.queue_create_triggered)
        assert execution.startup_time == pytest.approx(expected)

    def test_pipelined_queues_cost_more(self, join_db):
        ideal = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        assoc = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        executor = Executor(Machine.uniform())
        t_ideal = executor.execute(
            ideal, QuerySchedule.for_plan(ideal, 2)).startup_time
        t_assoc = executor.execute(
            assoc, QuerySchedule.for_plan(assoc, 1)).startup_time
        assert t_assoc > t_ideal

    def test_startup_grows_with_degree(self):
        small = make_join_database(400, 40, degree=4, theta=0.0)
        large = make_join_database(400, 40, degree=40, theta=0.0)
        executor = Executor(Machine.uniform())
        plan_s = ideal_join_plan(small.entry_a, small.entry_b, "key", "key")
        plan_l = ideal_join_plan(large.entry_a, large.entry_b, "key", "key")
        s = executor.execute(plan_s, QuerySchedule.for_plan(plan_s, 2))
        l = executor.execute(plan_l, QuerySchedule.for_plan(plan_l, 2))
        assert l.startup_time > s.startup_time


class TestPlacement:
    def test_cold_slower_than_warm(self, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 8))
        plan = selection_plan(entry, TRUE)
        schedule = QuerySchedule.for_plan(plan, 2)
        warm = Executor(Machine.ksr1(processors=8),
                        ExecutionOptions(placement=PLACEMENT_WARM)).execute(
            plan, schedule)
        cold = Executor(Machine.ksr1(processors=8),
                        ExecutionOptions(placement=PLACEMENT_COLD)).execute(
            plan, schedule)
        assert cold.response_time > warm.response_time
        assert cold.operation("filter").memory_penalty > 0
        assert warm.operation("filter").memory_penalty == pytest.approx(0.0)

    def test_uniform_machine_ignores_placement(self, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 8))
        plan = selection_plan(entry, TRUE)
        schedule = QuerySchedule.for_plan(plan, 2)
        warm = Executor(Machine.uniform(),
                        ExecutionOptions(placement=PLACEMENT_WARM)).execute(
            plan, schedule)
        cold = Executor(Machine.uniform(),
                        ExecutionOptions(placement=PLACEMENT_COLD)).execute(
            plan, schedule)
        assert warm.response_time == pytest.approx(cold.response_time)


class TestWaves:
    def test_materialized_chains_run_sequentially(self, join_db, catalog,
                                                  small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre")
        consumer = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key")
        merged = materialized(producer, consumer, "pre", "join")
        execution = Executor(Machine.uniform()).execute(
            merged, QuerySchedule.for_plan(merged, 2))
        pre = execution.operation("pre")
        join = execution.operation("join")
        assert join.started_at >= pre.finished_at

    def test_results_from_both_terminal_ops(self, join_db, catalog,
                                            small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre")
        consumer = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key")
        merged = materialized(producer, consumer, "pre", "join")
        execution = Executor(Machine.uniform()).execute(
            merged, QuerySchedule.for_plan(merged, 2))
        expected = small_relation.cardinality + join_db.expected_matches
        assert execution.result_cardinality == expected


class TestSecondaryQueues:
    def test_static_binding_never_steals(self, skewed_join_db):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        schedule = QuerySchedule({"join": OperationSchedule(
            4, allow_secondary=False)})
        execution = Executor(Machine.uniform()).execute(plan, schedule)
        assert execution.operation("join").secondary_accesses == 0

    def test_dynamic_balancing_beats_static_under_skew(self, skewed_join_db):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        executor = Executor(Machine.uniform())
        dynamic = executor.execute(plan, QuerySchedule(
            {"join": OperationSchedule(4, allow_secondary=True)}))
        static = executor.execute(plan, QuerySchedule(
            {"join": OperationSchedule(4, allow_secondary=False)}))
        assert dynamic.response_time <= static.response_time + 1e-9
