"""Consumption strategies: Random, LPT, RoundRobin."""

import random

import pytest

from repro.engine.queues import ActivationQueue
from repro.engine.strategies import (
    LPTStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)
from repro.errors import ExecutionError


def _queues(estimates):
    return [ActivationQueue("op", i, "triggered", cost_estimate=e)
            for i, e in enumerate(estimates)]


class TestRandomStrategy:
    def test_single_candidate_shortcut(self):
        queues = _queues([1.0])
        assert RandomStrategy().choose(random.Random(0), queues) is queues[0]

    def test_covers_all_candidates(self):
        queues = _queues([1.0, 1.0, 1.0])
        rng = random.Random(0)
        strategy = RandomStrategy()
        chosen = {strategy.choose(rng, queues).instance for _ in range(100)}
        assert chosen == {0, 1, 2}

    def test_deterministic_for_seed(self):
        queues = _queues([1.0] * 5)
        picks_a = [RandomStrategy().choose(random.Random(7), queues).instance
                   for _ in range(1)]
        picks_b = [RandomStrategy().choose(random.Random(7), queues).instance
                   for _ in range(1)]
        assert picks_a == picks_b


class TestLPTStrategy:
    def test_picks_most_expensive(self):
        queues = _queues([1.0, 9.0, 3.0])
        assert LPTStrategy().choose(random.Random(0), queues).instance == 1

    def test_tie_breaks_on_lower_instance(self):
        queues = _queues([5.0, 5.0])
        assert LPTStrategy().choose(random.Random(0), queues).instance == 0

    def test_ignores_rng(self):
        queues = _queues([1.0, 2.0])
        for seed in range(5):
            assert LPTStrategy().choose(random.Random(seed), queues).instance == 1

    def test_lpt_order_matches_descending_estimates(self):
        """Serving queues in LPT order processes the most expensive
        activations with highest priority, as in [Graham69]."""
        queues = _queues([2.0, 8.0, 5.0, 1.0])
        strategy = LPTStrategy()
        order = []
        remaining = list(queues)
        while remaining:
            pick = strategy.choose(random.Random(0), remaining)
            order.append(pick.instance)
            remaining.remove(pick)
        assert order == [1, 2, 0, 3]


class TestRoundRobinStrategy:
    def test_rotates(self):
        queues = _queues([1.0, 1.0, 1.0])
        strategy = RoundRobinStrategy()
        rng = random.Random(0)
        picks = [strategy.choose(rng, queues).instance for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("random", RandomStrategy),
        ("lpt", LPTStrategy),
        ("round_robin", RoundRobinStrategy),
    ])
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ExecutionError):
            make_strategy("greedy")
