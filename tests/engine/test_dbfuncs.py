"""Operator bodies: real relational results plus cost accounting."""

import pytest

from repro.engine.dbfuncs import (
    ExecContext,
    FilterFunc,
    JoinFunc,
    PipelinedJoinFunc,
    TransmitFunc,
    make_dbfunc,
    segment_key,
)
from repro.errors import ExecutionError
from repro.lera.activation import trigger, tuple_activation
from repro.lera.operators import (
    JOIN_HASH,
    JOIN_NESTED_LOOP,
    JOIN_TEMP_INDEX,
    JoinSpec,
    PipelinedJoinSpec,
    ScanFilterSpec,
    TransmitSpec,
)
from repro.lera.predicates import attribute_predicate
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


def _ctx():
    return ExecContext(Machine.uniform(), owner=0)


def _fragments(name, rows_per_fragment):
    return [Fragment(name, i, SCHEMA, rows)
            for i, rows in enumerate(rows_per_fragment)]


class TestFilterFunc:
    def _func(self):
        fragments = _fragments("R", [[(0, 0), (2, 20), (4, 40)],
                                     [(1, 10), (3, 30)]])
        predicate = attribute_predicate(SCHEMA, "key", ">", 1)
        return FilterFunc(ScanFilterSpec(fragments, predicate, SCHEMA),
                          DEFAULT_COSTS)

    def test_emits_matching_rows(self):
        result = self._func().process(0, trigger(0), _ctx())
        assert result.emitted == [(2, 20), (4, 40)]

    def test_cost_scales_with_fragment(self):
        func = self._func()
        cost0 = func.process(0, trigger(0), _ctx()).cost
        cost1 = func.process(1, trigger(1), _ctx()).cost
        assert cost0 > cost1  # 3 rows scanned vs 2

    def test_rejects_data_activation(self):
        with pytest.raises(ExecutionError):
            self._func().process(0, tuple_activation(0, (1, 1)), _ctx())

    def test_segments_reported(self):
        segments = self._func().segments(0)
        assert segments[0][0] == ("R", 0)


class TestJoinFunc:
    def _func(self, algorithm):
        outer = _fragments("A", [[(0, 1), (8, 2), (16, 3)]])
        inner = _fragments("B", [[(8, 100), (8, 101), (24, 102)]])
        spec = JoinSpec(outer, inner, "key", "key", algorithm=algorithm)
        return JoinFunc(spec, DEFAULT_COSTS)

    @pytest.mark.parametrize("algorithm", [JOIN_NESTED_LOOP, JOIN_TEMP_INDEX,
                                           JOIN_HASH])
    def test_same_matches_every_algorithm(self, algorithm):
        result = self._func(algorithm).process(0, trigger(0), _ctx())
        assert sorted(result.emitted) == [(8, 2, 8, 100), (8, 2, 8, 101)]

    def test_nested_loop_cost_is_quadratic(self):
        result = self._func(JOIN_NESTED_LOOP).process(0, trigger(0), _ctx())
        floor = 9 * DEFAULT_COSTS.tuple_pair
        assert result.cost >= floor

    def test_index_cost_below_nested_loop_for_big_fragments(self):
        rows_outer = [[(i, i) for i in range(500)]]
        rows_inner = [[(i, -i) for i in range(50)]]
        nl = JoinFunc(JoinSpec(_fragments("A", rows_outer),
                               _fragments("B", rows_inner), "key", "key",
                               algorithm=JOIN_NESTED_LOOP), DEFAULT_COSTS)
        ix = JoinFunc(JoinSpec(_fragments("A", rows_outer),
                               _fragments("B", rows_inner), "key", "key",
                               algorithm=JOIN_TEMP_INDEX), DEFAULT_COSTS)
        assert (ix.process(0, trigger(0), _ctx()).cost
                < nl.process(0, trigger(0), _ctx()).cost)

    def test_rejects_data_activation(self):
        with pytest.raises(ExecutionError):
            self._func(JOIN_HASH).process(0, tuple_activation(0, (1, 1)), _ctx())


class TestTransmitFunc:
    def _func(self):
        fragments = _fragments("B", [[(0, 0), (2, 2)], [(1, 1)]])
        return TransmitFunc(TransmitSpec(fragments, "key", 4), DEFAULT_COSTS)

    def test_emits_whole_fragment(self):
        result = self._func().process(0, trigger(0), _ctx())
        assert result.emitted == [(0, 0), (2, 2)]

    def test_cost_per_tuple(self):
        result = self._func().process(0, trigger(0), _ctx())
        expected = (DEFAULT_COSTS.trigger_activation
                    + 2 * DEFAULT_COSTS.transmit_tuple)
        assert result.cost == pytest.approx(expected)


class TestPipelinedJoinFunc:
    def _func(self, algorithm=JOIN_NESTED_LOOP):
        stored = _fragments("A", [[(0, 1), (4, 2), (4, 3)], [(1, 9)]])
        spec = PipelinedJoinSpec(stored, "key", SCHEMA, "key",
                                 algorithm=algorithm, stream_cardinality=10)
        return PipelinedJoinFunc(spec, DEFAULT_COSTS)

    @pytest.mark.parametrize("algorithm", [JOIN_NESTED_LOOP, JOIN_TEMP_INDEX,
                                           JOIN_HASH])
    def test_probe_matches(self, algorithm):
        result = self._func(algorithm).process(
            0, tuple_activation(0, (4, 100)), _ctx())
        assert sorted(result.emitted) == [(4, 100, 4, 2), (4, 100, 4, 3)]

    def test_probe_miss_is_empty(self):
        result = self._func().process(0, tuple_activation(0, (99, 0)), _ctx())
        assert result.emitted == []

    def test_index_build_charged_once(self):
        func = self._func(JOIN_TEMP_INDEX)
        first = func.process(0, tuple_activation(0, (4, 0)), _ctx()).cost
        second = func.process(0, tuple_activation(0, (4, 0)), _ctx()).cost
        assert first > second  # lazy build charged on first activation

    def test_instances_have_independent_state(self):
        func = self._func(JOIN_TEMP_INDEX)
        func.process(0, tuple_activation(0, (4, 0)), _ctx())
        # instance 1's first probe still pays its own build
        first = func.process(1, tuple_activation(1, (1, 0)), _ctx()).cost
        second = func.process(1, tuple_activation(1, (1, 0)), _ctx()).cost
        assert first > second

    def test_rejects_control_activation(self):
        with pytest.raises(ExecutionError):
            self._func().process(0, trigger(0), _ctx())


class TestExecContext:
    def test_penalty_accumulates(self):
        machine = Machine.ksr1(processors=2)
        ctx = ExecContext(machine, owner=0)
        ctx.touch("seg", 4096)
        ctx.touch("seg2", 4096)
        assert ctx.penalty > 0
        assert ctx.penalty == pytest.approx(
            2 * DEFAULT_COSTS.lines(4096)
            * DEFAULT_COSTS.remote_penalty_per_line())

    def test_uniform_machine_no_penalty(self):
        ctx = _ctx()
        assert ctx.touch("seg", 4096) == 0.0
        assert ctx.penalty == 0.0


class TestFactory:
    def test_dispatch(self):
        fragments = _fragments("R", [[(1, 1)]])
        from repro.lera.predicates import TRUE
        assert isinstance(
            make_dbfunc(ScanFilterSpec(fragments, TRUE, SCHEMA), DEFAULT_COSTS),
            FilterFunc)
        assert isinstance(
            make_dbfunc(TransmitSpec(fragments, "key", 2), DEFAULT_COSTS),
            TransmitFunc)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ExecutionError):
            make_dbfunc(object(), DEFAULT_COSTS)

    def test_segment_key(self):
        fragment = Fragment("R", 7, SCHEMA)
        assert segment_key(fragment) == ("R", 7)
