"""Worker-thread model: clocks, accounting, main queues."""

import pytest

from repro.engine.operation import OperationRuntime
from repro.engine.strategies import make_strategy
from repro.engine.threads import RUNNABLE, WorkerThread
from repro.lera.graph import LeraNode
from repro.lera.operators import ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _operation(instances=6, threads=2):
    fragments = [Fragment("R", i, SCHEMA, [(i,)]) for i in range(instances)]
    node = LeraNode("op", ScanFilterSpec(fragments, TRUE, SCHEMA))
    from repro.engine.dbfuncs import make_dbfunc
    runtime = OperationRuntime(node, make_dbfunc(node.spec, DEFAULT_COSTS),
                               make_strategy("random"), cache_size=1)
    runtime.build_pool(list(range(threads)), start_time=1.0)
    return runtime


class TestWorkerThread:
    def test_initial_state(self):
        operation = _operation()
        thread = operation.threads[0]
        assert thread.state == RUNNABLE
        assert thread.clock == 1.0
        assert thread.busy_time == 0.0

    def test_advance_accounts_busy_and_idle(self):
        thread = _operation().threads[0]
        thread.advance(2.0, busy=True)
        thread.advance(1.0, busy=False)
        assert thread.clock == 4.0
        assert thread.busy_time == 2.0
        assert thread.idle_time == 1.0

    def test_wait_until_only_moves_forward(self):
        thread = _operation().threads[0]
        thread.wait_until(5.0)
        assert thread.clock == 5.0
        assert thread.idle_time == 4.0
        thread.wait_until(3.0)  # in the past: no-op
        assert thread.clock == 5.0

    def test_utilization(self):
        thread = _operation().threads[0]
        thread.advance(3.0, busy=True)
        thread.advance(1.0, busy=False)
        thread.finished_at = thread.clock
        assert thread.utilization == pytest.approx(0.75)

    def test_utilization_zero_lifetime(self):
        thread = _operation().threads[0]
        assert thread.utilization == 0.0


class TestMainQueueAssignment:
    def test_round_robin_distribution(self):
        operation = _operation(instances=6, threads=2)
        first, second = operation.threads
        assert {q.instance for q in first.main_queues} == {0, 2, 4}
        assert {q.instance for q in second.main_queues} == {1, 3, 5}

    def test_every_queue_has_exactly_one_owner(self):
        operation = _operation(instances=7, threads=3)
        owners = [q.instance for t in operation.threads
                  for q in t.main_queues]
        assert sorted(owners) == list(range(7))

    def test_more_threads_than_queues(self):
        operation = _operation(instances=2, threads=5)
        owned = [len(t.main_queues) for t in operation.threads]
        assert sum(owned) == 2
        # threads beyond the queue count own no main queue
        assert owned.count(0) == 3
