"""Virtual-time simulator: scheduling, pipelining, termination."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    OperationSchedule,
    QuerySchedule,
)
from repro.lera.plans import assoc_join_plan, ideal_join_plan, selection_plan
from repro.lera.predicates import TRUE
from repro.machine.machine import Machine
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec


def _executor(processors=16, **options):
    return Executor(Machine.uniform(processors=processors),
                    ExecutionOptions(**options))


class TestTermination:
    def test_all_threads_finish(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 4))
        join = execution.operation("join")
        assert join.finished_at > join.started_at

    def test_more_threads_than_activations(self, join_db):
        """Extra threads terminate immediately without deadlock."""
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _executor(processors=64).execute(
            plan, QuerySchedule.for_plan(plan, 40))
        assert execution.operation("join").activations == join_db.degree

    def test_empty_relation_selection(self, catalog, small_schema):
        from repro.storage.relation import Relation
        relation = Relation("E", small_schema, [])
        entry = catalog.register(relation, PartitioningSpec.on("key", 4))
        plan = selection_plan(entry, TRUE)
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == 0


class TestVirtualTime:
    def test_response_time_monotone_in_work(self):
        small = make_join_database(500, 50, degree=10, theta=0.0)
        large = make_join_database(2000, 200, degree=10, theta=0.0)
        plan_small = ideal_join_plan(small.entry_a, small.entry_b, "key", "key")
        plan_large = ideal_join_plan(large.entry_a, large.entry_b, "key", "key")
        t_small = _executor().execute(
            plan_small, QuerySchedule.for_plan(plan_small, 4)).response_time
        t_large = _executor().execute(
            plan_large, QuerySchedule.for_plan(plan_large, 4)).response_time
        assert t_large > t_small

    def test_more_threads_is_faster(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        t2 = _executor().execute(plan, QuerySchedule.for_plan(plan, 2)).response_time
        t8 = _executor().execute(plan, QuerySchedule.for_plan(plan, 8)).response_time
        assert t8 < t2

    def test_response_at_least_ideal(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 4))
        profile = execution.operation("join").profile()
        assert execution.response_time >= profile.ideal_time(4)

    def test_deterministic_for_seed(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        times = {_executor(seed=3).execute(
            plan, QuerySchedule.for_plan(plan, 4)).response_time
            for _ in range(3)}
        assert len(times) == 1

    def test_different_seeds_may_differ_slightly(self, skewed_join_db):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        t_a = _executor(seed=1).execute(
            plan, QuerySchedule.for_plan(plan, 4)).response_time
        t_b = _executor(seed=2).execute(
            plan, QuerySchedule.for_plan(plan, 4)).response_time
        # Random strategy: both valid executions of the same work
        assert abs(t_a - t_b) / t_a < 0.5


class TestPipelining:
    def test_consumer_overlaps_producer(self, join_db):
        """In AssocJoin the join starts before the transmit finishes —
        the essence of pipelined execution."""
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = QuerySchedule({
            "transmit": OperationSchedule(2),
            "join": OperationSchedule(2),
        })
        execution = _executor().execute(plan, schedule)
        transmit = execution.operation("transmit")
        join = execution.operation("join")
        assert join.finished_at >= transmit.finished_at
        # Join consumed activations while transmit was still running:
        # its busy time exceeds what fits after the transmit finished.
        post_transmit = (join.finished_at - transmit.finished_at) * join.threads
        assert join.busy_time > post_transmit

    def test_pipeline_results_complete(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _executor().execute(plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == join_db.expected_matches


class TestBackpressure:
    def test_bounded_queues_still_complete(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _executor(queue_capacity=4).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        assert execution.result_cardinality == join_db.expected_matches

    def test_backpressure_slows_or_equals(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        free = _executor().execute(
            plan, QuerySchedule.for_plan(plan, 2)).response_time
        tight = _executor(queue_capacity=1).execute(
            plan, QuerySchedule.for_plan(plan, 2)).response_time
        assert tight >= free - 1e-9


class TestOversubscription:
    def test_dilation_slows_execution(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        few_procs = Executor(Machine.uniform(processors=2)).execute(
            plan, QuerySchedule.for_plan(plan, 8))
        many_procs = Executor(Machine.uniform(processors=16)).execute(
            plan, QuerySchedule.for_plan(plan, 8))
        assert few_procs.response_time > many_procs.response_time

    def test_sliced_mode_preserves_results(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform(processors=2)).execute(
            plan, QuerySchedule.for_plan(plan, 4))
        assert execution.result_cardinality == join_db.expected_matches

    def test_straggler_runs_undilated(self, skewed_join_db):
        """Once other threads drain, the last activation proceeds at
        full speed: response stays near Pmax, not Pmax * dilation."""
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        execution = Executor(Machine.uniform(processors=8)).execute(
            plan, QuerySchedule.for_plan(plan, 16, strategy="lpt"))
        profile = execution.operation("join").profile()
        # generous bound: well under Pmax * full dilation
        dilation = Machine.uniform(processors=8).dilation(16)
        assert execution.response_time < profile.worst_time(8) * dilation
