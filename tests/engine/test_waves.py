"""Wave execution: independent chains run concurrently in one wave."""

import pytest

from repro.engine.executor import Executor, QuerySchedule
from repro.lera.graph import LeraGraph
from repro.lera.operators import ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.machine import Machine
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _filter_node(name: str, cardinality: int) -> ScanFilterSpec:
    fragments = [Fragment(name, i, SCHEMA,
                          [(j,) for j in range(cardinality // 4)])
                 for i in range(4)]
    return ScanFilterSpec(fragments, TRUE, SCHEMA)


class TestConcurrentChainsInOneWave:
    def test_independent_chains_overlap(self):
        """Two chains with no dependency execute in the same wave —
        their busy intervals overlap in virtual time."""
        graph = LeraGraph()
        graph.add_node("left", _filter_node("L", 2000))
        graph.add_node("right", _filter_node("R", 2000))
        executor = Executor(Machine.uniform(processors=8))
        execution = executor.execute(graph, QuerySchedule.for_plan(graph, 2))
        left = execution.operation("left")
        right = execution.operation("right")
        assert left.started_at == right.started_at
        # both ran from the same instant: neither starts after the
        # other finished
        assert left.started_at < right.finished_at
        assert right.started_at < left.finished_at

    def test_wave_response_is_slowest_chain(self):
        graph = LeraGraph()
        graph.add_node("small", _filter_node("S", 400))
        graph.add_node("large", _filter_node("B", 8000))
        executor = Executor(Machine.uniform(processors=8))
        execution = executor.execute(graph, QuerySchedule.for_plan(graph, 2))
        assert execution.response_time == pytest.approx(
            execution.operation("large").finished_at)
        assert (execution.operation("small").finished_at
                < execution.operation("large").finished_at)

    def test_results_from_both_chains(self):
        graph = LeraGraph()
        graph.add_node("left", _filter_node("L", 400))
        graph.add_node("right", _filter_node("R", 800))
        executor = Executor(Machine.uniform(processors=8))
        execution = executor.execute(graph, QuerySchedule.for_plan(graph, 2))
        assert execution.result_cardinality == 400 + 800

    def test_dilation_covers_combined_threads(self):
        """A wave's thread total, not a single chain's, drives the
        over-subscription accounting."""
        graph = LeraGraph()
        graph.add_node("left", _filter_node("L", 4000))
        graph.add_node("right", _filter_node("R", 4000))
        small_machine = Machine.uniform(processors=4)
        execution = Executor(small_machine).execute(
            graph, QuerySchedule.for_plan(graph, 4))   # 8 threads on 4 procs
        assert execution.dilation > 1.0
        solo = LeraGraph()
        solo.add_node("left", _filter_node("L2", 4000))
        alone = Executor(small_machine).execute(
            solo, QuerySchedule.for_plan(solo, 4))
        # sharing the machine slows the same chain down
        assert (execution.operation("left").response_time
                > alone.operation("left").response_time)
