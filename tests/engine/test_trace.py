"""Execution tracing and the Gantt renderer."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    QuerySchedule,
)
from repro.engine.trace import ExecutionTrace
from repro.errors import ReproError
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine


def _traced(plan, threads=4, strategy="random"):
    executor = Executor(Machine.uniform(processors=8),
                        ExecutionOptions(
                            observability=ObservabilityOptions(trace=True)))
    return executor.execute(plan,
                            QuerySchedule.for_plan(plan, threads, strategy))


class TestTraceCollection:
    def test_one_event_per_activation(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan)
        assert execution.trace is not None
        assert len(execution.trace) == join_db.degree

    def test_pipeline_traces_both_operations(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        trace = execution.trace
        assert set(trace.operations()) == {"transmit", "join"}
        join_events = [e for e in trace.events if e.operation == "join"]
        assert len(join_events) == join_db.entry_b.cardinality

    def test_tracing_off_by_default(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        executor = Executor(Machine.uniform(processors=8))
        execution = executor.execute(plan, QuerySchedule.for_plan(plan, 2))
        assert execution.trace is None

    def test_events_have_positive_duration(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        for event in _traced(plan).trace.events:
            assert event.duration > 0

    def test_events_within_response_time(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        start, end = execution.trace.span
        assert start >= execution.startup_time - 1e-9
        assert end <= execution.response_time + 1e-9

    def test_busy_time_matches_metrics(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        traced_busy = sum(execution.trace.busy_time(t)
                          for t in execution.trace.thread_ids())
        metric_busy = execution.operation("join").busy_time
        # trace records activation intervals; metrics also count queue
        # machinery, so trace <= metrics, within a small margin.
        assert traced_busy <= metric_busy + 1e-9
        assert traced_busy > metric_busy * 0.95

    def test_finalize_events_marked(self):
        from repro.lera.aggregates import AggregateExpr
        from repro.lera.plans import aggregate_plan
        from repro.storage.catalog import Catalog
        from repro.storage.partitioning import PartitioningSpec
        from repro.storage.relation import Relation
        from repro.storage.schema import Schema
        schema = Schema.of_ints("key", "grp")
        entry = Catalog().register(
            Relation("R", schema, [(i, i % 3) for i in range(60)]),
            PartitioningSpec.on("key", 4))
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp")
        execution = _traced(plan, threads=2)
        kinds = {e.kind for e in execution.trace.events}
        assert "finalize" in kinds


class TestTraceQueries:
    def test_empty_trace_raises(self):
        with pytest.raises(ReproError):
            ExecutionTrace().span
        with pytest.raises(ReproError):
            ExecutionTrace().gantt()

    def test_active_threads(self):
        trace = ExecutionTrace()
        trace.record(0, "op", "activation", 0.0, 2.0)
        trace.record(1, "op", "activation", 1.0, 3.0)
        assert trace.active_threads(0.5) == 1
        assert trace.active_threads(1.5) == 2
        assert trace.active_threads(2.5) == 1

    def test_utilization_timeline(self):
        trace = ExecutionTrace()
        trace.record(0, "op", "activation", 0.0, 1.0)
        trace.record(1, "op", "activation", 0.0, 2.0)
        timeline = trace.utilization_timeline(bins=2)
        assert timeline[0] == pytest.approx(1.0)   # both busy
        assert timeline[1] == pytest.approx(0.5)   # one busy

    def test_sweep_matches_naive_reference(self):
        """The O(E log E + bins) sweep must agree with the per-bin
        rescan it replaced, on an irregular random trace."""
        import random
        rng = random.Random(7)
        trace = ExecutionTrace()
        for _ in range(300):
            start = rng.uniform(0.0, 10.0)
            trace.record(rng.randrange(6), f"op{rng.randrange(5)}",
                         "activation", start, start + rng.uniform(0.01, 3.0))
        span_start, span_end = trace.span
        width = (span_end - span_start) / 17
        threads = len(trace.thread_ids())
        naive = []
        for i in range(17):
            lo = span_start + i * width
            hi = lo + width
            busy = sum(max(0.0, min(e.end, hi) - max(e.start, lo))
                       for e in trace.events)
            naive.append(busy / (width * threads))
        swept = trace.utilization_timeline(bins=17)
        assert swept == pytest.approx(naive)
        for instant in (span_start, 2.5, 5.0, 9.9, span_end, -1.0):
            expected = sum(1 for e in trace.events
                           if e.start <= instant < e.end)
            assert trace.active_threads(instant) == expected

    def test_bounds_cache_invalidated_by_new_events(self):
        trace = ExecutionTrace()
        trace.record(0, "op", "activation", 0.0, 1.0)
        assert trace.active_threads(0.5) == 1
        trace.record(1, "op", "activation", 0.0, 1.0)
        assert trace.active_threads(0.5) == 2


class TestGantt:
    def test_renders_rows_and_legend(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        chart = execution.trace.gantt(width=40)
        lines = chart.splitlines()
        # header + one row per thread + legend
        assert len(lines) == 1 + 4 + 1
        assert "legend:" in lines[-1]
        assert "transmit" in lines[-1]
        assert all("|" in line for line in lines[1:-1])

    def test_golden_rendering(self):
        """Pin the exact rendering of a tiny hand-built trace."""
        trace = ExecutionTrace()
        trace.record(0, "scan", "activation", 0.0, 1.0)
        trace.record(1, "join", "activation", 0.0, 2.0)
        trace.record(0, "join", "finalize", 1.0, 2.0)
        expected = "\n".join([
            "virtual time 0.000s .. 2.000s (0.2500s per column)",
            "t  0 |aaaaBBBB|",
            "t  1 |bbbbbbbb|",
            "legend: a=scan, b=join (uppercase = finalize), · = idle",
        ])
        assert trace.gantt(width=8) == expected

    def test_idle_columns_dotted(self):
        trace = ExecutionTrace()
        trace.record(0, "scan", "activation", 0.0, 1.0)
        trace.record(0, "scan", "activation", 3.0, 4.0)
        row = trace.gantt(width=8).splitlines()[1]
        assert row == "t  0 |aa····aa|"

    def test_many_operations_share_glyphs_explicitly(self):
        """With more operations than glyphs the legend disambiguates
        instead of silently reusing letters."""
        from repro.engine.trace import _GLYPHS
        trace = ExecutionTrace()
        count = len(_GLYPHS) + 8
        for i in range(count):
            trace.record(0, f"op{i:03d}", "activation",
                         float(i), float(i) + 1.0)
        chart = trace.gantt(width=40)
        legend = chart.splitlines()[-2]
        note = chart.splitlines()[-1]
        assert f"a=op000|op{len(_GLYPHS):03d}" in legend
        assert f"note: {count} operations share {len(_GLYPHS)} glyphs" in note

    def test_few_operations_have_unique_glyphs_and_no_note(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        chart = _traced(plan, threads=2).trace.gantt(width=40)
        assert "note:" not in chart

    def test_skew_straggler_visible(self, skewed_join_db):
        """The Gantt makes the Pmax straggler literally visible: one
        thread's row is busy long after the others idle."""
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        execution = _traced(plan, threads=8, strategy="lpt")
        trace = execution.trace
        ends = [max((e.end for e in trace.events_of(t)), default=0.0)
                for t in trace.thread_ids()]
        assert max(ends) > 1.5 * sorted(ends)[len(ends) // 2]
