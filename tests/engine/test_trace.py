"""Execution tracing and the Gantt renderer."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import ExecutionOptions, Executor, QuerySchedule
from repro.engine.trace import ExecutionTrace
from repro.errors import ReproError
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine


def _traced(plan, threads=4, strategy="random"):
    executor = Executor(Machine.uniform(processors=8),
                        ExecutionOptions(trace=True))
    return executor.execute(plan,
                            QuerySchedule.for_plan(plan, threads, strategy))


class TestTraceCollection:
    def test_one_event_per_activation(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan)
        assert execution.trace is not None
        assert len(execution.trace) == join_db.degree

    def test_pipeline_traces_both_operations(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        trace = execution.trace
        assert set(trace.operations()) == {"transmit", "join"}
        join_events = [e for e in trace.events if e.operation == "join"]
        assert len(join_events) == join_db.entry_b.cardinality

    def test_tracing_off_by_default(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        executor = Executor(Machine.uniform(processors=8))
        execution = executor.execute(plan, QuerySchedule.for_plan(plan, 2))
        assert execution.trace is None

    def test_events_have_positive_duration(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        for event in _traced(plan).trace.events:
            assert event.duration > 0

    def test_events_within_response_time(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        start, end = execution.trace.span
        assert start >= execution.startup_time - 1e-9
        assert end <= execution.response_time + 1e-9

    def test_busy_time_matches_metrics(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        traced_busy = sum(execution.trace.busy_time(t)
                          for t in execution.trace.thread_ids())
        metric_busy = execution.operation("join").busy_time
        # trace records activation intervals; metrics also count queue
        # machinery, so trace <= metrics, within a small margin.
        assert traced_busy <= metric_busy + 1e-9
        assert traced_busy > metric_busy * 0.95

    def test_finalize_events_marked(self):
        from repro.lera.aggregates import AggregateExpr
        from repro.lera.plans import aggregate_plan
        from repro.storage.catalog import Catalog
        from repro.storage.partitioning import PartitioningSpec
        from repro.storage.relation import Relation
        from repro.storage.schema import Schema
        schema = Schema.of_ints("key", "grp")
        entry = Catalog().register(
            Relation("R", schema, [(i, i % 3) for i in range(60)]),
            PartitioningSpec.on("key", 4))
        plan = aggregate_plan(entry, (AggregateExpr("count"),),
                              group_by="grp")
        execution = _traced(plan, threads=2)
        kinds = {e.kind for e in execution.trace.events}
        assert "finalize" in kinds


class TestTraceQueries:
    def test_empty_trace_raises(self):
        with pytest.raises(ReproError):
            ExecutionTrace().span
        with pytest.raises(ReproError):
            ExecutionTrace().gantt()

    def test_active_threads(self):
        trace = ExecutionTrace()
        trace.record(0, "op", "activation", 0.0, 2.0)
        trace.record(1, "op", "activation", 1.0, 3.0)
        assert trace.active_threads(0.5) == 1
        assert trace.active_threads(1.5) == 2
        assert trace.active_threads(2.5) == 1

    def test_utilization_timeline(self):
        trace = ExecutionTrace()
        trace.record(0, "op", "activation", 0.0, 1.0)
        trace.record(1, "op", "activation", 0.0, 2.0)
        timeline = trace.utilization_timeline(bins=2)
        assert timeline[0] == pytest.approx(1.0)   # both busy
        assert timeline[1] == pytest.approx(0.5)   # one busy


class TestGantt:
    def test_renders_rows_and_legend(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = _traced(plan, threads=2)
        chart = execution.trace.gantt(width=40)
        lines = chart.splitlines()
        # header + one row per thread + legend
        assert len(lines) == 1 + 4 + 1
        assert "legend:" in lines[-1]
        assert "transmit" in lines[-1]
        assert all("|" in line for line in lines[1:-1])

    def test_skew_straggler_visible(self, skewed_join_db):
        """The Gantt makes the Pmax straggler literally visible: one
        thread's row is busy long after the others idle."""
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        execution = _traced(plan, threads=8, strategy="lpt")
        trace = execution.trace
        ends = [max((e.end for e in trace.events_of(t)), default=0.0)
                for t in trace.thread_ids()]
        assert max(ends) > 1.5 * sorted(ends)[len(ends) // 2]
