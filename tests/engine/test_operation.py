"""Operation runtime lifecycle: seeding, close, completion."""

import pytest

from repro.engine.dbfuncs import make_dbfunc
from repro.engine.operation import OperationRuntime
from repro.engine.strategies import make_strategy
from repro.errors import ExecutionError
from repro.lera.graph import LeraNode
from repro.lera.operators import PipelinedJoinSpec, ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _triggered(instances=4):
    fragments = [Fragment("R", i, SCHEMA, [(i,)]) for i in range(instances)]
    node = LeraNode("op", ScanFilterSpec(fragments, TRUE, SCHEMA))
    return OperationRuntime(node, make_dbfunc(node.spec, DEFAULT_COSTS),
                            make_strategy("random"), cache_size=1)


def _pipelined(instances=3):
    fragments = [Fragment("A", i, SCHEMA, [(i,)]) for i in range(instances)]
    node = LeraNode("pjoin", PipelinedJoinSpec(
        fragments, "key", SCHEMA, "key", stream_cardinality=9))
    return OperationRuntime(node, make_dbfunc(node.spec, DEFAULT_COSTS),
                            make_strategy("random"), cache_size=1)


class TestConstruction:
    def test_one_queue_per_instance(self):
        operation = _triggered(5)
        assert len(operation.queues) == 5
        assert [q.instance for q in operation.queues] == list(range(5))

    def test_queue_estimates_from_spec(self):
        operation = _triggered(3)
        estimates = operation.node.spec.estimated_instance_costs(DEFAULT_COSTS)
        assert [q.cost_estimate for q in operation.queues] == estimates

    def test_cache_size_must_be_positive(self):
        fragments = [Fragment("R", 0, SCHEMA, [(0,)])]
        node = LeraNode("op", ScanFilterSpec(fragments, TRUE, SCHEMA))
        with pytest.raises(ExecutionError):
            OperationRuntime(node, make_dbfunc(node.spec, DEFAULT_COSTS),
                             make_strategy("random"), cache_size=0)

    def test_empty_pool_rejected(self):
        operation = _triggered()
        with pytest.raises(ExecutionError):
            operation.build_pool([], start_time=0.0)


class TestLifecycle:
    def test_seed_triggers_closes_input(self):
        operation = _triggered(4)
        operation.build_pool([0, 1], start_time=0.0)
        operation.seed_triggers(0.0)
        assert operation.input_closed
        assert operation.pending_activations == 4
        assert all(len(q) == 1 for q in operation.queues)

    def test_seed_on_pipelined_rejected(self):
        operation = _pipelined()
        operation.build_pool([0], start_time=0.0)
        with pytest.raises(ExecutionError):
            operation.seed_triggers(0.0)

    def test_pipelined_input_open_until_closed(self):
        operation = _pipelined()
        operation.producers_remaining = 1
        assert not operation.input_closed
        operation.close_input()
        assert operation.input_closed

    def test_drained(self):
        operation = _triggered(2)
        operation.build_pool([0], start_time=0.0)
        operation.seed_triggers(0.0)
        assert not operation.drained
        for queue in operation.queues:
            queue.dequeue_ready(1.0, 1)
        operation.pending_activations = 0
        assert operation.drained

    def test_earliest_pending(self):
        operation = _triggered(3)
        operation.build_pool([0], start_time=0.0)
        operation.queues[1].enqueue(5.0, _make_trigger(1))
        operation.queues[2].enqueue(2.0, _make_trigger(2))
        assert operation.earliest_pending() == 2.0

    def test_earliest_pending_empty(self):
        operation = _triggered(2)
        assert operation.earliest_pending() is None

    def test_complete_requires_built_pool(self):
        operation = _triggered()
        assert not operation.complete

    def test_response_time_zero_before_finish(self):
        operation = _triggered()
        assert operation.response_time == 0.0


def _make_trigger(instance):
    from repro.lera.activation import trigger
    return trigger(instance)
