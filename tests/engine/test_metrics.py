"""Execution metrics derivations."""

import pytest

from repro.engine.executor import Executor, QuerySchedule
from repro.engine.metrics import OperationMetrics
from repro.errors import ExecutionError
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine


def _metrics(**overrides):
    """A directly-constructed OperationMetrics for edge-case tests."""
    fields = dict(
        name="op", trigger_mode="triggered", instances=4, threads=2,
        strategy="random", started_at=0.0, finished_at=1.0,
        activation_costs=(0.1, 0.2), activation_outputs=(1, 2),
        queue_activations=(1, 1, 0, 0), busy_time=0.3, idle_time=1.7,
        polls=4, enqueues=3, dequeue_batches=2, secondary_accesses=1,
        memory_penalty=0.0, result_count=3)
    fields.update(overrides)
    return OperationMetrics(**fields)


@pytest.fixture
def execution(join_db):
    plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
    return Executor(Machine.uniform(processors=8)).execute(
        plan, QuerySchedule.for_plan(plan, 4))


class TestOperationMetrics:
    def test_identity_fields(self, execution, join_db):
        metrics = execution.operation("join")
        assert metrics.name == "join"
        assert metrics.trigger_mode == "triggered"
        assert metrics.instances == join_db.degree
        assert metrics.threads == 4
        assert metrics.strategy == "random"

    def test_activation_count_matches_fragments(self, execution, join_db):
        assert execution.operation("join").activations == join_db.degree

    def test_work_is_sum_of_costs(self, execution):
        metrics = execution.operation("join")
        assert metrics.work == pytest.approx(sum(metrics.activation_costs))

    def test_profile_round_trip(self, execution):
        metrics = execution.operation("join")
        profile = metrics.profile()
        assert profile.activations == metrics.activations
        assert profile.total_cost == pytest.approx(metrics.work)

    def test_utilization_bounded(self, execution):
        utilization = execution.operation("join").utilization
        assert 0.0 < utilization <= 1.0

    def test_response_time_positive(self, execution):
        assert execution.operation("join").response_time > 0

    def test_unknown_operation_raises(self, execution):
        with pytest.raises(ExecutionError):
            execution.operation("ghost")


class TestEdgeCases:
    def test_queue_imbalance_even_placement(self):
        assert _metrics(queue_activations=(2, 2, 2, 2)).queue_imbalance() \
            == pytest.approx(1.0)

    def test_queue_imbalance_skewed_placement(self):
        metrics = _metrics(queue_activations=(8, 0, 0, 0))
        assert metrics.queue_imbalance() == pytest.approx(4.0)

    def test_queue_imbalance_zero_activations(self):
        # No activations at all: defined as perfectly balanced, not a
        # division by zero.
        assert _metrics(queue_activations=(0, 0, 0, 0)).queue_imbalance() \
            == pytest.approx(1.0)

    def test_queue_imbalance_no_queues(self):
        assert _metrics(queue_activations=()).queue_imbalance() \
            == pytest.approx(1.0)

    def test_utilization_zero_span(self):
        # Start == finish (e.g. a no-op operation): utilization is 0,
        # not a division by zero.
        assert _metrics(finished_at=0.0).utilization == 0.0

    def test_utilization_zero_activations(self):
        metrics = _metrics(activation_costs=(), activation_outputs=(),
                           busy_time=0.0)
        assert metrics.activations == 0
        assert metrics.work == 0.0
        assert metrics.emitted == 0
        assert metrics.utilization == 0.0

    def test_utilization_normal(self):
        assert _metrics().utilization == pytest.approx(0.3 / (1.0 * 2))


class TestQueryExecution:
    def test_work_aggregates_operations(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        per_op = sum(op.work for op in execution.operations.values())
        assert execution.work == pytest.approx(per_op)

    def test_total_activations(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        expected = join_db.degree + join_db.entry_b.cardinality
        assert execution.total_activations == expected

    def test_speedup_against(self, execution):
        assert execution.speedup_against(
            execution.response_time) == pytest.approx(1.0)

    def test_response_includes_startup(self, execution):
        assert execution.response_time > execution.startup_time


class TestSummary:
    def test_summary_is_readable(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        execution = Executor(Machine.uniform()).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        text = execution.summary()
        assert "response time" in text
        assert "transmit" in text
        assert "join" in text
        assert "util=" in text
