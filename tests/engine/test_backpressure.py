"""Bounded-queue (NotFull) semantics at the unit and system level."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    OperationSchedule,
    QuerySchedule,
)
from repro.engine.queues import ActivationQueue
from repro.lera.activation import tuple_activation
from repro.lera.plans import assoc_join_plan
from repro.machine.machine import Machine


class TestQueueCapacityUnit:
    def test_over_capacity_transitions(self):
        queue = ActivationQueue("op", 0, "pipelined", capacity=2)
        queue.enqueue(0.0, tuple_activation(0, (1,)))
        assert not queue.over_capacity
        queue.enqueue(0.0, tuple_activation(0, (2,)))
        assert queue.over_capacity
        queue.dequeue_ready(1.0, limit=1)
        assert not queue.over_capacity

    def test_blocked_producer_registry(self):
        queue = ActivationQueue("op", 0, "pipelined", capacity=1)
        assert queue.blocked_producers == []


class TestBackpressureSystem:
    @pytest.fixture
    def database(self):
        return make_join_database(1000, 200, degree=8, theta=0.0)

    def _run(self, database, capacity, transmit_threads=4, join_threads=1):
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        schedule = QuerySchedule({
            "transmit": OperationSchedule(transmit_threads),
            "join": OperationSchedule(join_threads),
        })
        executor = Executor(Machine.uniform(processors=16),
                            ExecutionOptions(queue_capacity=capacity))
        return executor.execute(plan, schedule)

    def test_results_unchanged_by_capacity(self, database):
        for capacity in (1, 4, 64, None):
            execution = self._run(database, capacity)
            assert execution.result_cardinality == database.expected_matches

    def test_fast_producer_slow_consumer_throttled(self, database):
        """Many transmit threads into one join thread: tight queues
        stall the producers, visible in the transmit's response time."""
        tight = self._run(database, capacity=1)
        free = self._run(database, capacity=None)
        assert (tight.operation("transmit").response_time
                >= free.operation("transmit").response_time)

    def test_overall_response_dominated_by_consumer(self, database):
        """Whatever the capacity, the slow consumer bounds the chain."""
        free = self._run(database, capacity=None)
        tight = self._run(database, capacity=2)
        join_work = free.operation("join").work
        for execution in (free, tight):
            assert execution.response_time >= join_work / 1 * 0.9

    def test_every_activation_still_consumed(self, database):
        execution = self._run(database, capacity=1)
        join = execution.operation("join")
        assert join.activations == database.entry_b.cardinality
