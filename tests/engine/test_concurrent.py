"""Multi-user concurrent execution."""

import pytest

from repro.bench.workloads import make_join_database, skewed_fragments
from repro.engine.concurrent import ConcurrentExecutor
from repro.engine.executor import Executor, QuerySchedule
from repro.errors import ExecutionError, PlanError
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler

MACHINE = Machine.uniform(processors=16)


def _workload(count=3, threads=4, theta=0.0, card_a=2000, card_b=200):
    workload = []
    expected = []
    for i in range(count):
        database = make_join_database(card_a, card_b, degree=10, theta=theta,
                                      name_a=f"A{i}", name_b=f"B{i}")
        plan = (ideal_join_plan if i % 2 == 0 else assoc_join_plan)(
            database.entry_a, database.entry_b, "key", "key")
        workload.append((plan, QuerySchedule.for_plan(plan, threads)))
        expected.append(database.expected_matches)
    return workload, expected


class TestConcurrentExecution:
    def test_results_per_query(self):
        workload, expected = _workload()
        result = ConcurrentExecutor(MACHINE).execute(workload)
        assert [e.result_cardinality for e in result.executions] == expected

    def test_makespan_covers_every_query(self):
        workload, _ = _workload()
        result = ConcurrentExecutor(MACHINE).execute(workload)
        assert result.makespan == pytest.approx(
            max(e.response_time for e in result.executions))

    def test_throughput_beats_serial_with_spare_processors(self):
        workload, _ = _workload(count=4, threads=4)
        concurrent = ConcurrentExecutor(MACHINE).execute(workload)
        serial = sum(Executor(MACHINE).execute(plan, schedule).response_time
                     for plan, schedule in workload)
        assert concurrent.makespan < serial

    def test_contention_slows_individual_queries(self):
        """Over-subscribing the machine dilates everyone."""
        small_machine = Machine.uniform(processors=4)
        workload, _ = _workload(count=4, threads=4)
        alone = Executor(small_machine).execute(*workload[0]).response_time
        shared = ConcurrentExecutor(small_machine).execute(workload)
        assert shared.executions[0].response_time > alone

    def test_mean_response_time(self):
        workload, _ = _workload(count=2)
        result = ConcurrentExecutor(MACHINE).execute(workload)
        expected = sum(e.response_time for e in result.executions) / 2
        assert result.mean_response_time == pytest.approx(expected)

    def test_empty_workload_rejected(self):
        with pytest.raises(ExecutionError):
            ConcurrentExecutor(MACHINE).execute([])

    def test_multi_wave_plan_rejected(self):
        from repro.lera.plans import two_phase_join_plan
        from repro.storage.catalog import Catalog
        from repro.storage.partitioning import PartitioningSpec
        database = make_join_database(500, 50, degree=5, theta=0.0)
        relation_c, fragments_c = skewed_fragments("C", 100, 4, 0.0)
        entry_c = Catalog().register_fragments(
            relation_c, PartitioningSpec.on("key", 4), fragments_c)
        plan = two_phase_join_plan(database.entry_a, database.entry_b,
                                   "key", "key", entry_c, "key", "key")
        with pytest.raises(PlanError, match="single-wave"):
            ConcurrentExecutor(MACHINE).execute(
                [(plan, QuerySchedule.for_plan(plan, 2))])

    def test_multi_user_factor_raises_throughput_under_contention(self):
        """The [Rahm93] hook: damping per-query parallelism leaves
        processors for the other queries."""
        machine = Machine.uniform(processors=8)
        scheduler_full = AdaptiveScheduler(machine, multi_user_factor=1.0)
        scheduler_damped = AdaptiveScheduler(machine, multi_user_factor=0.4)

        def batch(scheduler):
            workload = []
            for i in range(4):
                database = make_join_database(
                    4000, 400, degree=10, theta=0.0,
                    name_a=f"X{i}", name_b=f"Y{i}")
                plan = ideal_join_plan(database.entry_a, database.entry_b,
                                       "key", "key")
                workload.append((plan, scheduler.schedule(plan)))
            return ConcurrentExecutor(machine).execute(workload)

        full = batch(scheduler_full)
        damped = batch(scheduler_damped)
        # The damped batch allocates fewer threads in total ...
        assert (sum(e.total_threads for e in damped.executions)
                < sum(e.total_threads for e in full.executions))
        # ... without losing much makespan (the machine was saturated).
        assert damped.makespan < full.makespan * 1.25
