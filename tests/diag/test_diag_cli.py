"""The --diagnose / compare CLI paths and the Makefile demo flows."""

import pytest

from repro.__main__ import main


@pytest.fixture
def runs_dir(tmp_path, monkeypatch):
    path = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(path))
    return path


class TestDiagnoseCommand:
    def test_diagnose_prints_full_report(self, capsys):
        assert main(["--diagnose", "--threads", "6"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "imbalance doctor" in out
        assert "redistribution-skew" in out

    def test_record_persists_run(self, runs_dir, capsys):
        code = main(["--diagnose", "--threads", "6", "--record",
                     "--run-id", "cli-run", "--label", "from the test"])
        assert code == 0
        assert (runs_dir / "cli-run.json").exists()
        assert "recorded run 'cli-run'" in capsys.readouterr().out

    def test_from_events_reloads_log(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["--diagnose", "--threads", "6",
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        assert main(["--diagnose", "--from-events", str(events)]) == 0
        out = capsys.readouterr().out
        assert "diagnosis (jsonl run):" in out
        assert "critical path:" in out


class TestCompareCommand:
    def test_compare_two_recorded_runs(self, runs_dir, capsys):
        main(["--diagnose", "--threads", "6", "--record",
              "--run-id", "a"])
        main(["--diagnose", "--threads", "6", "--record",
              "--run-id", "b"])
        capsys.readouterr()
        assert main(["compare", "a", "b"]) == 0
        out = capsys.readouterr().out
        assert "compare a (A) vs b (B):" in out
        assert "within tolerance" in out

    def test_gate_fails_on_regression(self, runs_dir, capsys):
        # Same workload, but the candidate gets starved of threads —
        # the gate must turn that into a non-zero exit.
        main(["--diagnose", "--threads", "10", "--record",
              "--run-id", "base"])
        main(["--diagnose", "--threads", "2", "--record",
              "--run-id", "starved"])
        capsys.readouterr()
        assert main(["compare", "base", "starved"]) == 0
        assert main(["compare", "base", "starved", "--gate"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_explicit_runs_dir_flag(self, tmp_path, capsys):
        explicit = tmp_path / "explicit"
        main(["--diagnose", "--threads", "6", "--record",
              "--run-id", "x", "--runs-dir", str(explicit)])
        main(["--diagnose", "--threads", "6", "--record",
              "--run-id", "y", "--runs-dir", str(explicit)])
        capsys.readouterr()
        assert main(["compare", "x", "y",
                     "--runs-dir", str(explicit)]) == 0

    def test_loose_tolerance_passes_gate(self, runs_dir, capsys):
        main(["--diagnose", "--threads", "10", "--record",
              "--run-id", "base"])
        main(["--diagnose", "--threads", "2", "--record",
              "--run-id", "starved"])
        capsys.readouterr()
        assert main(["compare", "base", "starved", "--gate",
                     "--tolerance", "10.0"]) == 0
