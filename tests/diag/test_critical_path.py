"""Critical-path extraction: invariants, attribution, bottleneck."""

import pytest

from repro.diag import ObservedRun, critical_path
from repro.diag.critical_path import BLOCKED, BUSY, WAIT
from repro.engine.executor import Executor, QuerySchedule
from repro.errors import ReproError
from repro.lera.plans import ideal_join_plan
from repro.machine.machine import Machine


class TestInvariants:
    """The two structural guarantees the module docstring pins."""

    @pytest.fixture(params=["balanced", "skewed", "choked"])
    def execution(self, request, join_db, skewed_join_db,
                  execute_assoc_join):
        if request.param == "balanced":
            return execute_assoc_join(join_db, 8, 8)
        if request.param == "skewed":
            return execute_assoc_join(skewed_join_db, 8, 8)
        return execute_assoc_join(join_db, 1, 8)

    def test_length_at_most_elapsed(self, execution):
        path = critical_path(execution)
        assert path.length <= execution.response_time + 1e-6

    def test_length_at_least_busiest_thread(self, execution):
        # The busiest operator's busiest thread forms a same-thread
        # chain, so the path can never carry less work than it.
        path = critical_path(execution)
        busy = ObservedRun.of(execution).thread_busy_times()
        assert path.length >= max(busy.values()) - 1e-9

    def test_segments_contiguous_and_forward(self, execution):
        segments = critical_path(execution).segments
        for segment in segments:
            assert segment.end >= segment.start
        for a, b in zip(segments, segments[1:]):
            assert b.start == pytest.approx(a.end, abs=1e-9)

    def test_length_is_sum_of_segments(self, execution):
        path = critical_path(execution)
        assert path.length == pytest.approx(path.end - path.start)

    def test_blame_covers_path(self, execution):
        path = critical_path(execution)
        operations = set(ObservedRun.of(execution).ops)
        assert set(path.blame) <= operations
        total = sum(blame.total for blame in path.blame.values())
        assert total == pytest.approx(path.length)


class TestAttribution:
    def test_busy_wait_block_partition_the_path(self, observed):
        path = critical_path(observed)
        kinds = {segment.kind for segment in path.segments}
        assert BUSY in kinds
        assert kinds <= {BUSY, WAIT, BLOCKED}
        assert path.busy_total() + path.wait_total() + path.block_total() \
            == pytest.approx(path.length)

    def test_bottleneck_shifts_when_producer_is_choked(self, join_db,
                                                       execute_assoc_join):
        # 8/8 is join-bound; throttling transmit to one thread makes
        # the scan the limiter, and the path must say so.
        balanced = critical_path(execute_assoc_join(join_db, 8, 8))
        choked = critical_path(execute_assoc_join(join_db, 1, 8))
        assert balanced.bottleneck == "join"
        assert choked.bottleneck == "transmit"
        balanced_transmit = (balanced.blame["transmit"].busy
                             if "transmit" in balanced.blame else 0.0)
        assert choked.blame["transmit"].busy > 2 * balanced_transmit

    def test_triggered_only_plan_works(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                               "key", "key")
        from repro.engine.executor import (
            ExecutionOptions,
            ObservabilityOptions,
        )
        execution = Executor(
            Machine.uniform(processors=8),
            ExecutionOptions(observability=ObservabilityOptions(observe=True)),
        ).execute(plan, QuerySchedule.for_plan(plan, 4))
        path = critical_path(execution)
        assert path.bottleneck == "join"
        assert path.length <= execution.response_time + 1e-6


class TestErrors:
    def test_unobserved_execution_rejected(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                               "key", "key")
        execution = Executor(Machine.uniform(processors=8)).execute(
            plan, QuerySchedule.for_plan(plan, 2))
        with pytest.raises(ReproError):
            critical_path(execution)


class TestPresentation:
    def test_render_and_json(self, observed):
        path = critical_path(observed)
        text = path.render()
        assert "critical path:" in text
        assert "bottleneck operator:" in text
        document = path.to_json()
        assert document["bottleneck"] == path.bottleneck
        assert document["length"] == pytest.approx(path.length)
        assert set(document["blame"]) == set(path.blame)
