"""Run registry: persistence, comparison, and the regression gate."""

import json

import pytest

from repro.diag import RunRecord, RunRegistry, compare, diagnose
from repro.diag.registry import (
    DEFAULT_TOLERANCE,
    RECORD_SCHEMA,
    RUNS_DIR_ENV,
    sanitize_run_id,
)
from repro.errors import ReproError


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(root=tmp_path / "runs")


class TestPersistence:
    def test_record_load_round_trip(self, registry, observed):
        path = registry.record(observed, "baseline", label="first")
        assert path.exists()
        loaded = registry.load("baseline")
        fresh = RunRecord.of(observed, "baseline", label="first",
                             created_at=loaded.created_at)
        assert loaded.to_json() == fresh.to_json()

    def test_record_is_valid_json_with_schema(self, registry, observed):
        path = registry.record(observed, "baseline")
        document = json.loads(path.read_text())
        assert document["schema"] == RECORD_SCHEMA
        assert document["critical_path"]["bottleneck"] == \
            registry.load("baseline").bottleneck

    def test_run_ids_sorted(self, registry, observed):
        for run_id in ("zeta", "alpha", "mid"):
            registry.record(observed, run_id)
        assert registry.run_ids() == ["alpha", "mid", "zeta"]

    def test_missing_run_lists_available(self, registry, observed):
        registry.record(observed, "only-one")
        with pytest.raises(ReproError, match="only-one"):
            registry.load("nope")

    def test_env_override_controls_root(self, tmp_path, monkeypatch,
                                        observed):
        monkeypatch.setenv(RUNS_DIR_ENV, str(tmp_path / "elsewhere"))
        registry = RunRegistry()
        registry.record(observed, "env-run")
        assert (tmp_path / "elsewhere" / "env-run.json").exists()

    def test_newer_record_schema_rejected(self):
        with pytest.raises(ReproError, match="newer"):
            RunRecord.from_json({"schema": RECORD_SCHEMA + 1})

    def test_sanitize_run_id(self):
        assert sanitize_run_id("a b/c:d") == "a_b_c_d"
        assert sanitize_run_id("ok-1.2_x") == "ok-1.2_x"
        with pytest.raises(ReproError):
            sanitize_run_id("   ")


class TestComparison:
    def test_identical_runs_compare_clean(self, registry, join_db,
                                          execute_assoc_join):
        registry.record(execute_assoc_join(join_db, 8, 8), "a")
        registry.record(execute_assoc_join(join_db, 8, 8), "b")
        comparison = compare(registry.load("a"), registry.load("b"))
        assert comparison.clean
        assert comparison.elapsed_delta == 0.0
        assert "within tolerance" in comparison.verdict

    def test_injected_slowdown_flags_regression_and_shift(
            self, registry, join_db, execute_assoc_join):
        # Choking the transmit pool 8 -> 1 slows the query ~50% and
        # moves the limiter from the join to the scan; the comparison
        # must report both.
        registry.record(execute_assoc_join(join_db, 8, 8), "balanced")
        registry.record(execute_assoc_join(join_db, 1, 8), "choked")
        comparison = compare(registry.load("balanced"),
                             registry.load("choked"))
        assert comparison.regressed
        assert comparison.elapsed_delta > DEFAULT_TOLERANCE
        assert comparison.bottleneck_shifted
        assert comparison.a.bottleneck == "join"
        assert comparison.b.bottleneck == "transmit"
        assert not comparison.clean
        assert "REGRESSION" in comparison.verdict
        assert "shifted" in comparison.verdict

    def test_improvement_direction(self, registry, join_db,
                                   execute_assoc_join):
        registry.record(execute_assoc_join(join_db, 1, 8), "slow")
        registry.record(execute_assoc_join(join_db, 8, 8), "fast")
        comparison = compare(registry.load("slow"), registry.load("fast"))
        assert comparison.improved
        assert not comparison.regressed

    def test_tolerance_widens_the_gate(self, registry, join_db,
                                       execute_assoc_join):
        registry.record(execute_assoc_join(join_db, 8, 8), "balanced")
        registry.record(execute_assoc_join(join_db, 1, 8), "choked")
        lax = compare(registry.load("balanced"), registry.load("choked"),
                      tolerance=10.0)
        assert not lax.regressed

    def test_op_deltas_cover_both_sides(self, registry, join_db,
                                        execute_assoc_join):
        registry.record(execute_assoc_join(join_db, 8, 8), "a")
        registry.record(execute_assoc_join(join_db, 1, 8), "b")
        comparison = compare(registry.load("a"), registry.load("b"))
        names = {delta.operation for delta in comparison.op_deltas}
        assert names == {"transmit", "join"}
        document = comparison.to_json()
        assert document["regressed"] is True
        assert document["bottleneck_shifted"] is True
        assert "  ** shifted **" in comparison.render()


class TestBenchHook:
    def test_record_runs_env_records_each_bench_point(
            self, tmp_path, monkeypatch, join_db):
        from repro.bench.runners import run_assoc_join
        monkeypatch.setenv("REPRO_RECORD_RUNS", "1")
        monkeypatch.setenv(RUNS_DIR_ENV, str(tmp_path / "bench-runs"))
        run_assoc_join(join_db, 4)
        ids = RunRegistry().run_ids()
        assert len(ids) == 1
        assert ids[0].startswith("assoc_join-")
        record = RunRegistry().load(ids[0])
        assert record.workload["threads"] == 4
        assert record.bottleneck in ("transmit", "join")

    def test_disabled_by_default(self, tmp_path, monkeypatch, join_db):
        from repro.bench.harness import record_runs_enabled
        monkeypatch.delenv("REPRO_RECORD_RUNS", raising=False)
        assert not record_runs_enabled()
        monkeypatch.setenv("REPRO_RECORD_RUNS", "0")
        assert not record_runs_enabled()


def test_diagnose_front_door_matches_parts(observed):
    diagnosis = diagnose(observed)
    assert diagnosis.bottleneck == diagnosis.critical_path.bottleneck
    text = diagnosis.render()
    assert "diagnosis (live run):" in text
    assert "critical path:" in text
    assert "imbalance doctor" in text
