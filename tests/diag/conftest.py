"""Shared diag fixtures: observed executions of the paper's plans."""

from __future__ import annotations

import pytest

from repro.bench.runners import default_machine
from repro.engine.executor import (
    ExecutionOptions,
    Executor,
    ObservabilityOptions,
    OperationSchedule,
    QuerySchedule,
)
from repro.lera.plans import assoc_join_plan


def _execute_assoc_join(database, transmit_threads: int, join_threads: int,
                        strategy: str = "random"):
    """One observed AssocJoin with an explicit per-operation split."""
    plan = assoc_join_plan(database.entry_a, database.entry_b, "key", "key")
    schedule = QuerySchedule({
        "transmit": OperationSchedule(transmit_threads),
        "join": OperationSchedule(join_threads, strategy),
    })
    executor = Executor(default_machine(), ExecutionOptions(
        observability=ObservabilityOptions(observe=True)))
    return executor.execute(plan, schedule)


@pytest.fixture
def execute_assoc_join():
    """The runner itself, for tests that vary the thread split."""
    return _execute_assoc_join


@pytest.fixture
def observed(join_db):
    """A balanced observed AssocJoin over the uniform database."""
    return _execute_assoc_join(join_db, 8, 8)


@pytest.fixture
def observed_skewed(skewed_join_db):
    """The same plan over the Zipf-1 database."""
    return _execute_assoc_join(skewed_join_db, 8, 8)
