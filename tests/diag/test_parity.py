"""Live-vs-reloaded parity: diagnosing an exported JSONL log must give
results identical to diagnosing the live execution it came from."""

import pytest

from repro.diag import ObservedRun, diagnose
from repro.errors import ReproError
from repro.obs.export import read_jsonl, write_jsonl


@pytest.fixture
def log_path(observed_skewed, tmp_path):
    path = tmp_path / "run.jsonl"
    write_jsonl(observed_skewed, path)
    return path


class TestParity:
    def test_critical_path_identical(self, observed_skewed, log_path):
        live = diagnose(observed_skewed)
        reloaded = diagnose(str(log_path))
        assert reloaded.critical_path.to_json() == \
            live.critical_path.to_json()
        assert reloaded.critical_path.segments == \
            live.critical_path.segments

    def test_findings_identical(self, observed_skewed, log_path):
        live = diagnose(observed_skewed)
        reloaded = diagnose(str(log_path))
        assert [f.to_json() for f in reloaded.findings] == \
            [f.to_json() for f in live.findings]

    def test_run_views_identical(self, observed_skewed, log_path):
        live = ObservedRun.of(observed_skewed)
        reloaded = ObservedRun.of(log_path)
        assert reloaded.source == "jsonl"
        assert live.source == "live"
        assert reloaded.ops == live.ops
        assert reloaded.events == live.events
        assert reloaded.trace.events == live.trace.events
        assert reloaded.response_time == live.response_time

    def test_instance_work_reconstruction_identical(self, observed_skewed,
                                                    log_path):
        live = ObservedRun.of(observed_skewed)
        reloaded = ObservedRun.of(log_path)
        assert reloaded.instance_busy_times("join") == \
            live.instance_busy_times("join")


class TestSchemaGuard:
    def test_schema_1_log_rejected_for_diagnosis(self, tmp_path):
        import json
        path = tmp_path / "v1.jsonl"
        path.write_text(json.dumps(
            {"type": "meta", "schema": 1, "response_time": 1.0,
             "startup_time": 0.1, "total_threads": 2,
             "dilation": 1.0}) + "\n")
        loaded = read_jsonl(path)
        assert loaded.schema == 1
        with pytest.raises(ReproError, match="schema"):
            ObservedRun.of(loaded)
