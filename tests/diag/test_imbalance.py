"""The imbalance doctor: skew detection, ranking, hints."""

import pytest

from repro.bench.runners import run_assoc_join
from repro.bench.workloads import make_join_database
from repro.diag import (
    REDISTRIBUTION_SKEW,
    STEAL_PRESSURE,
    ObservedRun,
    diagnose_imbalance,
    render_findings,
)


from repro.bench.fig12_assocjoin_skew import PAPER_THREADS


@pytest.fixture(scope="module")
def fig12_skewed():
    """The Figure 12 setup (scaled down 25x for test speed): AssocJoin,
    Zipf-skewed stored operand, uniform stream, Random consumption."""
    database = make_join_database(4000, 400, degree=40, theta=1.0)
    return run_assoc_join(database, PAPER_THREADS, strategy="random",
                          observe=True)


@pytest.fixture(scope="module")
def fig12_uniform():
    database = make_join_database(4000, 400, degree=40, theta=0.0)
    return run_assoc_join(database, PAPER_THREADS, strategy="random",
                          observe=True)


class TestSkewDetection:
    def test_skewed_join_is_top_finding(self, fig12_skewed):
        findings = diagnose_imbalance(fig12_skewed)
        assert findings, "skewed workload produced no findings"
        top = findings[0]
        assert top.operation == "join"
        assert top.kind == REDISTRIBUTION_SKEW
        assert top.score > 1.5

    def test_uniform_control_has_no_skew_finding(self, fig12_uniform):
        findings = diagnose_imbalance(fig12_uniform)
        assert all(f.kind != REDISTRIBUTION_SKEW for f in findings)

    def test_finding_reports_real_ratio(self, fig12_skewed):
        top = diagnose_imbalance(fig12_skewed)[0]
        # The score must be re-derivable from the reconstructed
        # per-instance work distribution.
        work = ObservedRun.of(fig12_skewed).instance_busy_times("join")
        mean = sum(work) / len(work)
        assert top.score == pytest.approx(max(work) / mean)

    def test_severity_ranked_descending(self, fig12_skewed):
        findings = diagnose_imbalance(fig12_skewed)
        severities = [finding.severity for finding in findings]
        assert severities == sorted(severities, reverse=True)


class TestInstanceWorkReconstruction:
    def test_skew_shows_in_work_not_counts(self, fig12_skewed):
        # The Figure 12 signature: the uniform stream spreads
        # activation *counts* evenly, the skewed stored operand
        # concentrates the *work*.
        run = ObservedRun.of(fig12_skewed)
        counts = run.ops["join"].queue_activations
        assert max(counts) <= 2 * (sum(counts) / len(counts))
        work = run.instance_busy_times("join")
        assert max(work) > 2 * (sum(work) / len(work))

    def test_work_accounts_for_all_join_busy_time(self, fig12_skewed):
        run = ObservedRun.of(fig12_skewed)
        reconstructed = sum(run.instance_busy_times("join"))
        activation_busy = sum(
            span.duration for span in run.trace.events
            if span.operation == "join" and span.kind == "activation")
        assert reconstructed == pytest.approx(activation_busy)


class TestPresentation:
    def test_render_lists_findings_worst_first(self, fig12_skewed):
        findings = diagnose_imbalance(fig12_skewed)
        text = render_findings(findings)
        assert "imbalance doctor" in text
        assert text.index("redistribution-skew") < len(text)
        for finding in findings:
            assert finding.hint in text

    def test_clean_run_renders_clean(self):
        assert "balanced" in render_findings([])

    def test_finding_json_shape(self, fig12_skewed):
        document = diagnose_imbalance(fig12_skewed)[0].to_json()
        assert set(document) == {"kind", "operation", "severity", "score",
                                 "message", "hint"}


class TestStealPressure:
    def test_redistribution_skew_comes_with_stealing(self, fig12_skewed):
        # Random consumption over a flooded queue forces secondary
        # accesses; the doctor should surface both sides of the story.
        findings = diagnose_imbalance(fig12_skewed)
        kinds = {finding.kind for finding in findings}
        assert STEAL_PRESSURE in kinds
