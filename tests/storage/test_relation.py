"""Relation container and reference operators (tests' ground truth)."""

import pytest

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class TestRelationBasics:
    def test_rejects_empty_name(self, small_schema):
        with pytest.raises(SchemaError):
            Relation("", small_schema)

    def test_cardinality_and_iter(self, small_relation):
        assert small_relation.cardinality == 100
        assert len(list(small_relation)) == 100

    def test_column_materializes(self, small_relation):
        keys = small_relation.column("key")
        assert keys == list(range(100))

    def test_size_bytes(self, small_relation):
        assert small_relation.size_bytes() == 100 * 2 * 8


class TestReferenceOperators:
    def test_select_filters(self, small_relation):
        selected = small_relation.select(lambda row: row[0] < 10)
        assert selected.cardinality == 10
        assert all(row[0] < 10 for row in selected)

    def test_select_keeps_schema(self, small_relation):
        assert small_relation.select(lambda r: True).schema == small_relation.schema

    def test_project_reorders(self, small_relation):
        projected = small_relation.project(["payload", "key"])
        assert projected.schema.names == ("payload", "key")
        assert projected.rows[3] == (30, 3)

    def test_join_matches_keys(self):
        left = Relation("L", Schema.of_ints("k", "x"), [(1, 10), (2, 20)])
        right = Relation("R", Schema.of_ints("j", "y"), [(2, 200), (3, 300)])
        joined = left.join(right, "k", "j")
        assert joined.rows == [(2, 20, 2, 200)]

    def test_join_handles_duplicates(self):
        left = Relation("L", Schema.of_ints("k"), [(1,), (1,)])
        right = Relation("R", Schema.of_ints("j"), [(1,), (1,)])
        assert left.join(right, "k", "j").cardinality == 4

    def test_join_output_schema_renames_collisions(self):
        left = Relation("L", Schema.of_ints("k"), [(1,)])
        right = Relation("R", Schema.of_ints("k"), [(1,)])
        assert left.join(right, "k", "k").schema.names == ("k", "k_2")

    def test_sorted_by(self):
        relation = Relation("S", Schema.of_ints("k"), [(3,), (1,), (2,)])
        assert relation.sorted_by("k").rows == [(1,), (2,), (3,)]

    def test_empty_join(self):
        left = Relation("L", Schema.of_ints("k"), [(1,)])
        right = Relation("R", Schema.of_ints("j"), [])
        assert left.join(right, "k", "j").cardinality == 0
