"""Catalog registration, lookup, co-partitioning, disks."""

import pytest

from repro.errors import CatalogError, PartitioningError
from repro.storage.catalog import Catalog
from repro.storage.disks import DiskArray
from repro.storage.fragment import Fragment
from repro.storage.partitioning import PartitioningSpec


class TestRegistration:
    def test_register_partitions_and_records(self, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 5))
        assert entry.degree == 5
        assert entry.cardinality == 100
        assert sum(f.cardinality for f in entry.fragments) == 100

    def test_duplicate_name_rejected(self, catalog, small_relation):
        catalog.register(small_relation, PartitioningSpec.on("key", 5))
        with pytest.raises(CatalogError):
            catalog.register(small_relation, PartitioningSpec.on("key", 5))

    def test_unknown_partition_key_rejected(self, catalog, small_relation):
        with pytest.raises(CatalogError):
            catalog.register(small_relation, PartitioningSpec.on("nope", 5))

    def test_fragments_placed_round_robin(self, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 8))
        disks = len(catalog.disks)
        for fragment in entry.fragments:
            assert fragment.disk == fragment.index % disks

    def test_register_fragments_checks_count(self, catalog, small_relation):
        fragments = [Fragment("R", 0, small_relation.schema, small_relation.rows)]
        with pytest.raises(CatalogError):
            catalog.register_fragments(small_relation,
                                       PartitioningSpec.on("key", 2), fragments)

    def test_register_fragments_checks_total(self, catalog, small_relation):
        fragments = [Fragment("R", 0, small_relation.schema, []),
                     Fragment("R", 1, small_relation.schema, [])]
        with pytest.raises(CatalogError):
            catalog.register_fragments(small_relation,
                                       PartitioningSpec.on("key", 2), fragments)

    def test_drop(self, catalog, small_relation):
        catalog.register(small_relation, PartitioningSpec.on("key", 2))
        catalog.drop("R")
        assert "R" not in catalog

    def test_drop_unknown_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("ghost")


class TestLookup:
    def test_entry_unknown_raises(self, catalog):
        with pytest.raises(CatalogError, match="unknown relation"):
            catalog.entry("ghost")

    def test_len_iter_contains(self, catalog, small_relation):
        catalog.register(small_relation, PartitioningSpec.on("key", 2))
        assert len(catalog) == 1
        assert "R" in catalog
        assert [e.name for e in catalog] == ["R"]

    def test_copartitioned_same_degree(self, catalog, small_relation,
                                        small_schema):
        from repro.storage.relation import Relation
        other = Relation("S", small_schema, [(i, i) for i in range(40)])
        catalog.register(small_relation, PartitioningSpec.on("key", 4))
        catalog.register(other, PartitioningSpec.on("key", 4))
        assert catalog.copartitioned("R", "S")

    def test_not_copartitioned_different_degree(self, catalog, small_relation,
                                                small_schema):
        from repro.storage.relation import Relation
        other = Relation("S", small_schema, [(i, i) for i in range(40)])
        catalog.register(small_relation, PartitioningSpec.on("key", 4))
        catalog.register(other, PartitioningSpec.on("key", 8))
        assert not catalog.copartitioned("R", "S")


class TestDiskArray:
    def test_rejects_zero_disks(self):
        with pytest.raises(PartitioningError):
            DiskArray(0)

    def test_round_robin_balance(self, small_relation):
        from repro.storage.partitioning import HashPartitioner
        fragments = HashPartitioner(PartitioningSpec.on("key", 12)).partition(
            small_relation)
        array = DiskArray(4)
        array.place_round_robin(fragments)
        assert [d.fragment_count for d in array.disks] == [3, 3, 3, 3]
        assert array.balance_ratio() == 1.0

    def test_degree_can_exceed_disks(self, small_relation):
        """The paper: the degree of partitioning is independent of the
        number of disks."""
        from repro.storage.partitioning import HashPartitioner
        fragments = HashPartitioner(PartitioningSpec.on("key", 50)).partition(
            small_relation)
        array = DiskArray(2)
        array.place_round_robin(fragments)
        assert sum(d.fragment_count for d in array.disks) == 50

    def test_empty_balance_ratio(self):
        assert DiskArray(3).balance_ratio() == 1.0

    def test_load_bytes(self, small_relation):
        from repro.storage.partitioning import HashPartitioner
        fragments = HashPartitioner(PartitioningSpec.on("key", 4)).partition(
            small_relation)
        array = DiskArray(2)
        array.place_round_robin(fragments)
        total = sum(d.load_bytes for d in array.disks)
        assert total == small_relation.size_bytes()
