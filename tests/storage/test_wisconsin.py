"""Wisconsin benchmark generator invariants [Bitton83]."""

import pytest

from repro.errors import SchemaError
from repro.storage.wisconsin import (
    WISCONSIN_INT_ATTRIBUTES,
    generate_wisconsin,
    wisconsin_schema,
)


class TestSchema:
    def test_int_schema_attributes(self):
        schema = wisconsin_schema()
        assert schema.names == WISCONSIN_INT_ATTRIBUTES

    def test_string_schema_adds_three(self):
        schema = wisconsin_schema(with_strings=True)
        assert len(schema) == len(WISCONSIN_INT_ATTRIBUTES) + 3
        assert schema[len(schema) - 1].kind == "str"


class TestGenerator:
    def test_cardinality(self, wisconsin_1k):
        assert wisconsin_1k.cardinality == 1000

    def test_unique1_is_permutation(self, wisconsin_1k):
        assert sorted(wisconsin_1k.column("unique1")) == list(range(1000))

    def test_unique2_is_sequential(self, wisconsin_1k):
        assert wisconsin_1k.column("unique2") == list(range(1000))

    def test_modulo_attributes(self, wisconsin_1k):
        schema = wisconsin_1k.schema
        u1 = schema.position("unique1")
        for name, base in (("two", 2), ("four", 4), ("ten", 10), ("twenty", 20)):
            position = schema.position(name)
            assert all(row[position] == row[u1] % base
                       for row in wisconsin_1k.rows)

    def test_percentage_attribute_selectivities(self, wisconsin_1k):
        # onePercent = unique1 % 100: each value selects exactly 1% of
        # the tuples; tenPercent = unique1 % 10 selects 10%.
        assert wisconsin_1k.column("onePercent").count(0) == 10
        assert wisconsin_1k.column("tenPercent").count(3) == 100

    def test_unique3_equals_unique1(self, wisconsin_1k):
        assert wisconsin_1k.column("unique3") == wisconsin_1k.column("unique1")

    def test_deterministic_for_seed(self):
        a = generate_wisconsin("X", 100, seed=5)
        b = generate_wisconsin("X", 100, seed=5)
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = generate_wisconsin("X", 100, seed=5)
        b = generate_wisconsin("X", 100, seed=6)
        assert a.rows != b.rows

    def test_string_attributes_generated(self):
        relation = generate_wisconsin("S", 50, with_strings=True)
        row = relation.rows[0]
        stringu1 = row[relation.schema.position("stringu1")]
        assert len(stringu1) == 52
        string4 = relation.column("string4")
        assert set(string4) <= {"AAAA", "HHHH", "OOOO", "VVVV"}

    def test_string_record_size_is_paper_like(self):
        """~208-byte records, as the Allcache calibration assumes."""
        from repro.storage.tuples import row_size_bytes
        relation = generate_wisconsin("S", 10, with_strings=True)
        size = row_size_bytes(relation.rows[0])
        assert 200 <= size <= 230

    def test_empty_relation(self):
        assert generate_wisconsin("E", 0).cardinality == 0

    def test_rejects_negative_cardinality(self):
        with pytest.raises(SchemaError):
            generate_wisconsin("E", -1)

    def test_tiny_relation_generates(self):
        relation = generate_wisconsin("T", 3)
        assert relation.cardinality == 3
