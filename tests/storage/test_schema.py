"""Schema and attribute behaviour."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Attribute, Schema


class TestAttribute:
    def test_default_kind_is_int(self):
        assert Attribute("x").kind == "int"

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_unknown_kind(self):
        with pytest.raises(SchemaError):
            Attribute("x", "blob")

    def test_renamed_keeps_kind(self):
        renamed = Attribute("x", "str").renamed("y")
        assert renamed.name == "y"
        assert renamed.kind == "str"

    def test_is_hashable_and_comparable(self):
        assert Attribute("x") == Attribute("x")
        assert hash(Attribute("x")) == hash(Attribute("x"))
        assert Attribute("x") != Attribute("x", "str")


class TestSchema:
    def test_of_ints_builds_in_order(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.names == ("a", "b", "c")
        assert all(attribute.kind == "int" for attribute in schema)

    def test_len_and_getitem(self):
        schema = Schema.of_ints("a", "b")
        assert len(schema) == 2
        assert schema[1].name == "b"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of_ints("a", "a")

    def test_position_resolves(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.position("c") == 2

    def test_position_unknown_raises_with_context(self):
        schema = Schema.of_ints("a")
        with pytest.raises(SchemaError, match="unknown attribute 'z'"):
            schema.position("z")

    def test_positions_batch(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.positions(["c", "a"]) == (2, 0)

    def test_contains(self):
        schema = Schema.of_ints("a")
        assert "a" in schema
        assert "b" not in schema

    def test_project_keeps_requested_order(self):
        schema = Schema.of_ints("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_equality_and_hash(self):
        assert Schema.of_ints("a", "b") == Schema.of_ints("a", "b")
        assert hash(Schema.of_ints("a")) == hash(Schema.of_ints("a"))
        assert Schema.of_ints("a") != Schema.of_ints("b")


class TestSchemaConcat:
    def test_disjoint_names_concatenate(self):
        joined = Schema.of_ints("a", "b").concat(Schema.of_ints("c"))
        assert joined.names == ("a", "b", "c")

    def test_collisions_get_numeric_suffix(self):
        joined = Schema.of_ints("a", "b").concat(Schema.of_ints("a", "b"))
        assert joined.names == ("a", "b", "a_2", "b_2")

    def test_repeated_collisions_count_up(self):
        joined = (Schema.of_ints("a")
                  .concat(Schema.of_ints("a"))
                  .concat(Schema.of_ints("a")))
        assert joined.names == ("a", "a_2", "a_3")

    def test_explicit_prefixes(self):
        joined = Schema.of_ints("k").concat(Schema.of_ints("k"),
                                            prefix_left="l.",
                                            prefix_right="r.")
        assert joined.names == ("l.k", "r.k")

    def test_suffix_avoids_existing_suffixed_name(self):
        left = Schema.of_ints("a", "a_2")
        joined = left.concat(Schema.of_ints("a"))
        assert joined.names == ("a", "a_2", "a_3")
