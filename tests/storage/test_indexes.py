"""Fragment-local indexes: hash and temp sorted index."""

import pytest

from repro.storage.indexes import HashIndex, SortedIndex, build_index

ROWS = [(3, "c"), (1, "a"), (2, "b"), (1, "a2"), (5, "e")]


class TestHashIndex:
    def test_lookup_hit(self):
        index = HashIndex(ROWS, 0)
        assert index.lookup(2) == [(2, "b")]

    def test_lookup_duplicates_preserve_order(self):
        index = HashIndex(ROWS, 0)
        assert index.lookup(1) == [(1, "a"), (1, "a2")]

    def test_lookup_miss_is_empty(self):
        assert HashIndex(ROWS, 0).lookup(99) == []

    def test_build_rows_counted(self):
        index = HashIndex(ROWS, 0)
        assert index.build_rows == 5
        assert len(index) == 5

    def test_distinct_keys(self):
        assert HashIndex(ROWS, 0).distinct_keys() == 4

    def test_build_cost_linear(self):
        assert HashIndex.build_cost_units(1000) == 1000.0


class TestSortedIndex:
    def test_lookup_hit(self):
        index = SortedIndex(ROWS, 0)
        assert index.lookup(3) == [(3, "c")]

    def test_lookup_duplicates(self):
        index = SortedIndex(ROWS, 0)
        assert sorted(index.lookup(1)) == [(1, "a"), (1, "a2")]

    def test_lookup_miss(self):
        assert SortedIndex(ROWS, 0).lookup(4) == []

    def test_range_lookup_inclusive(self):
        index = SortedIndex(ROWS, 0)
        keys = sorted(row[0] for row in index.range_lookup(2, 3))
        assert keys == [2, 3]

    def test_range_lookup_empty(self):
        assert SortedIndex(ROWS, 0).range_lookup(10, 20) == []

    def test_build_cost_nlogn(self):
        assert SortedIndex.build_cost_units(1024) == 1024 * 10

    def test_build_cost_tiny(self):
        assert SortedIndex.build_cost_units(0) == 0.0
        assert SortedIndex.build_cost_units(1) == 1.0

    def test_empty_index(self):
        index = SortedIndex([], 0)
        assert index.lookup(1) == []
        assert len(index) == 0


class TestFactory:
    def test_builds_hash(self):
        assert isinstance(build_index(ROWS, 0, "hash"), HashIndex)

    def test_builds_sorted(self):
        assert isinstance(build_index(ROWS, 0, "sorted"), SortedIndex)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_index(ROWS, 0, "btree")

    def test_indexes_agree_on_lookup(self):
        hash_index = build_index(ROWS, 0, "hash")
        sorted_index = build_index(ROWS, 0, "sorted")
        for key in (1, 2, 3, 4, 5):
            assert sorted(hash_index.lookup(key)) == sorted(sorted_index.lookup(key))
