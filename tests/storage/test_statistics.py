"""Fragment statistics feeding LPT and the scheduler."""

from repro.storage.fragment import Fragment
from repro.storage.schema import Schema
from repro.storage.statistics import FragmentStatistics


def _stats(cardinalities):
    return FragmentStatistics(tuple(cardinalities))


class TestFragmentStatistics:
    def test_of_fragments(self):
        schema = Schema.of_ints("k")
        fragments = [Fragment("R", i, schema, [(j,) for j in range(i + 1)])
                     for i in range(3)]
        stats = FragmentStatistics.of(fragments)
        assert stats.cardinalities == (1, 2, 3)

    def test_totals(self):
        stats = _stats([4, 6, 10])
        assert stats.total == 20
        assert stats.degree == 3
        assert stats.largest == 10
        assert stats.mean == 20 / 3

    def test_skew_ratio(self):
        assert _stats([10, 10]).skew_ratio == 1.0
        assert _stats([30, 10]).skew_ratio == 1.5

    def test_empty_stats(self):
        stats = _stats([])
        assert stats.mean == 0.0
        assert stats.largest == 0
        assert stats.skew_ratio == 1.0

    def test_is_skewed_threshold(self):
        assert _stats([30, 10]).is_skewed(1.4)
        assert not _stats([30, 10]).is_skewed(1.6)

    def test_descending_order_is_lpt_order(self):
        stats = _stats([5, 50, 20])
        assert stats.descending_order() == [1, 2, 0]

    def test_descending_order_stable_shapes(self):
        order = _stats([10, 10, 10]).descending_order()
        assert sorted(order) == [0, 1, 2]
