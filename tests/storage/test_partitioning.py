"""Hash partitioning: specs, fragment assignment, repartitioning."""

import pytest

from repro.errors import PartitioningError
from repro.storage.fragment import Fragment
from repro.storage.partitioning import (
    HashPartitioner,
    PartitioningSpec,
    fragment_of,
    repartition_row,
)
from repro.storage.schema import Schema
from repro.storage.tuples import stable_hash


class TestPartitioningSpec:
    def test_on_builds_single_key_spec(self):
        spec = PartitioningSpec.on("key", 8)
        assert spec.keys == ("key",)
        assert spec.degree == 8

    def test_rejects_zero_degree(self):
        with pytest.raises(PartitioningError):
            PartitioningSpec.on("key", 0)

    def test_rejects_no_keys(self):
        with pytest.raises(PartitioningError):
            PartitioningSpec((), 4)

    def test_rejects_non_hash_method(self):
        with pytest.raises(PartitioningError):
            PartitioningSpec(("key",), 4, method="range")

    def test_compatibility_same_degree(self):
        a = PartitioningSpec.on("x", 8)
        b = PartitioningSpec.on("y", 8)
        assert a.compatible_with(b)

    def test_incompatibility_different_degree(self):
        assert not PartitioningSpec.on("x", 8).compatible_with(
            PartitioningSpec.on("x", 16))


class TestHashPartitioner:
    def _partition(self, relation, key, degree):
        return HashPartitioner(PartitioningSpec.on(key, degree)).partition(relation)

    def test_fragments_cover_relation(self, small_relation):
        fragments = self._partition(small_relation, "key", 7)
        total = sum(f.cardinality for f in fragments)
        assert total == small_relation.cardinality

    def test_fragments_are_disjoint_and_complete(self, small_relation):
        fragments = self._partition(small_relation, "key", 7)
        rebuilt = sorted(row for f in fragments for row in f.rows)
        assert rebuilt == sorted(small_relation.rows)

    def test_rows_land_in_hash_bucket(self, small_relation):
        fragments = self._partition(small_relation, "key", 7)
        for fragment in fragments:
            for row in fragment.rows:
                assert stable_hash(row[0]) % 7 == fragment.index

    def test_degree_one_is_single_fragment(self, small_relation):
        fragments = self._partition(small_relation, "key", 1)
        assert len(fragments) == 1
        assert fragments[0].cardinality == 100

    def test_integer_keys_partition_by_modulo(self, small_relation):
        fragments = self._partition(small_relation, "key", 10)
        # keys 0..99, degree 10: exactly 10 rows per fragment
        assert [f.cardinality for f in fragments] == [10] * 10

    def test_multi_key_partitioning(self):
        schema = Schema.of_ints("a", "b")
        from repro.storage.relation import Relation
        relation = Relation("M", schema, [(i, i % 3) for i in range(60)])
        spec = PartitioningSpec(("a", "b"), 5)
        fragments = HashPartitioner(spec).partition(relation)
        assert sum(f.cardinality for f in fragments) == 60
        for fragment in fragments:
            for row in fragment.rows:
                assert fragment_of((row[0], row[1]), 5) == fragment.index


class TestRepartitionRow:
    def test_matches_static_partitioning(self):
        # A transmitted stream must line up with a statically
        # partitioned build side: same hash, same buckets.
        for key in range(200):
            assert repartition_row((key, 0), 0, 13) == stable_hash(key) % 13

    def test_fragment_of_single_vs_tuple(self):
        assert fragment_of([42], 7) == 42 % 7


class TestFragment:
    def test_append_and_len(self):
        fragment = Fragment("R", 0, Schema.of_ints("k"))
        fragment.append((1,))
        assert len(fragment) == 1
        assert fragment.cardinality == 1

    def test_size_bytes(self):
        fragment = Fragment("R", 0, Schema.of_ints("k", "v"), [(1, 2)])
        assert fragment.size_bytes() == 16

    def test_repr_mentions_relation_and_index(self):
        fragment = Fragment("R", 3, Schema.of_ints("k"))
        assert "R" in repr(fragment)
        assert "3" in repr(fragment)
