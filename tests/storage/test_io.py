"""CSV round-trips."""

import pytest

from repro.errors import SchemaError
from repro.storage.io import relation_from_csv, relation_to_csv
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema


class TestRoundTrip:
    def test_int_relation(self, tmp_path, small_relation):
        path = tmp_path / "r.csv"
        relation_to_csv(small_relation, path)
        loaded = relation_from_csv("R2", path, small_relation.schema)
        assert loaded.rows == small_relation.rows
        assert loaded.schema == small_relation.schema

    def test_mixed_kinds(self, tmp_path):
        schema = Schema([Attribute("id", "int"), Attribute("score", "float"),
                         Attribute("city", "str")])
        relation = Relation("M", schema, [(1, 2.5, "paris"), (2, -1.0, "lyon")])
        path = tmp_path / "m.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv("M", path, schema)
        assert loaded.rows == relation.rows

    def test_empty_relation(self, tmp_path, small_schema):
        relation = Relation("E", small_schema, [])
        path = tmp_path / "e.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv("E", path, small_schema)
        assert loaded.rows == []


class TestInference:
    def test_kinds_inferred(self, tmp_path):
        path = tmp_path / "i.csv"
        path.write_text("id,score,city\n1,2.5,paris\n2,3.5,lyon\n")
        loaded = relation_from_csv("I", path)
        assert [a.kind for a in loaded.schema] == ["int", "float", "str"]
        assert loaded.rows == [(1, 2.5, "paris"), (2, 3.5, "lyon")]

    def test_empty_file_with_header_defaults_to_str(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        loaded = relation_from_csv("H", path)
        assert loaded.cardinality == 0
        assert [a.kind for a in loaded.schema] == ["str", "str"]


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="header"):
            relation_from_csv("X", path)

    def test_header_schema_mismatch(self, tmp_path, small_schema):
        path = tmp_path / "x.csv"
        path.write_text("wrong,names\n1,2\n")
        with pytest.raises(SchemaError, match="does not match"):
            relation_from_csv("X", path, small_schema)

    def test_bad_value_reports_line(self, tmp_path, small_schema):
        path = tmp_path / "x.csv"
        path.write_text("key,payload\n1,2\nnope,4\n")
        with pytest.raises(SchemaError, match=":3"):
            relation_from_csv("X", path, small_schema)

    def test_wrong_column_count(self, tmp_path, small_schema):
        path = tmp_path / "x.csv"
        path.write_text("key,payload\n1,2,3\n")
        with pytest.raises(SchemaError, match="values for"):
            relation_from_csv("X", path, small_schema)


class TestEndToEnd:
    def test_loaded_relation_queries(self, tmp_path):
        from repro.core.database import DBS3
        path = tmp_path / "sales.csv"
        path.write_text("key,amount\n" + "".join(
            f"{i},{i * 3}\n" for i in range(200)))
        relation = relation_from_csv("Sales", path)
        db = DBS3(processors=4)
        db.create_table(relation, "key", 8)
        result = db.query("SELECT SUM(amount) FROM Sales WHERE key < 10")
        assert result.rows == [(sum(3 * i for i in range(10)),)]
