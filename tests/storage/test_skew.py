"""Zipf skew mathematics."""

import math

import pytest

from repro.errors import PartitioningError
from repro.storage.skew import (
    sample_zipf_fragment,
    skew_ratio,
    theoretical_skew_ratio,
    zipf_cardinalities,
    zipf_weights,
)


class TestZipfWeights:
    def test_theta_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(abs(w - 0.1) < 1e-12 for w in weights)

    def test_weights_sum_to_one(self):
        assert math.isclose(sum(zipf_weights(37, 0.7)), 1.0)

    def test_weights_decrease(self):
        weights = zipf_weights(20, 0.9)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_theta_one_is_harmonic(self):
        weights = zipf_weights(3, 1.0)
        h3 = 1 + 0.5 + 1 / 3
        assert math.isclose(weights[0], 1 / h3)

    def test_rejects_bad_degree(self):
        with pytest.raises(PartitioningError):
            zipf_weights(0, 0.5)

    def test_rejects_negative_theta(self):
        with pytest.raises(PartitioningError):
            zipf_weights(5, -0.1)


class TestZipfCardinalities:
    def test_sum_is_exact(self):
        for theta in (0.0, 0.3, 0.6, 1.0):
            cards = zipf_cardinalities(10_001, 97, theta)
            assert sum(cards) == 10_001

    def test_first_fragment_is_largest(self):
        cards = zipf_cardinalities(1000, 10, 0.8)
        assert cards[0] == max(cards)

    def test_uniform_split(self):
        assert zipf_cardinalities(100, 10, 0.0) == [10] * 10

    def test_zero_total(self):
        assert zipf_cardinalities(0, 5, 1.0) == [0] * 5

    def test_rejects_negative_total(self):
        with pytest.raises(PartitioningError):
            zipf_cardinalities(-1, 5, 0.5)

    def test_paper_nmax_values(self):
        """Section 5.5: with 200 fragments, nmax = total/largest is
        ~6 for Zipf 1, ~19 for 0.6, ~40 for 0.4."""
        for theta, expected in ((1.0, 6), (0.6, 19), (0.4, 40)):
            cards = zipf_cardinalities(200_000, 200, theta)
            nmax = sum(cards) / max(cards)
            assert abs(nmax - expected) / expected < 0.15


class TestSkewRatio:
    def test_uniform_ratio_is_one(self):
        assert skew_ratio([5, 5, 5, 5]) == 1.0

    def test_empty_is_one(self):
        assert skew_ratio([]) == 1.0

    def test_all_zero_is_one(self):
        assert skew_ratio([0, 0]) == 1.0

    def test_ratio_value(self):
        assert skew_ratio([30, 10, 10, 10]) == 30 / 15

    def test_theoretical_matches_integer_version(self):
        theoretical = theoretical_skew_ratio(100, 0.6)
        integral = skew_ratio(zipf_cardinalities(100_000, 100, 0.6))
        assert abs(theoretical - integral) / theoretical < 0.02


class TestSampling:
    def test_sample_respects_range(self):
        import random
        rng = random.Random(1)
        samples = [sample_zipf_fragment(8, 1.0, rng) for _ in range(200)]
        assert all(0 <= s < 8 for s in samples)

    def test_sample_prefers_first_fragment(self):
        import random
        rng = random.Random(1)
        samples = [sample_zipf_fragment(8, 1.0, rng) for _ in range(2000)]
        counts = [samples.count(i) for i in range(8)]
        assert counts[0] == max(counts)
