"""Row helpers, in particular the stable hash partitioning relies on."""

from repro.storage.tuples import (
    concat_rows,
    project_row,
    row_size_bytes,
    stable_hash,
)


class TestStableHash:
    def test_small_ints_hash_to_themselves(self):
        assert stable_hash(5) == 5
        assert stable_hash(0) == 0

    def test_negative_ints_are_masked_to_64_bits(self):
        assert stable_hash(-1) == (1 << 64) - 1

    def test_bools_hash_as_ints(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_strings_are_deterministic(self):
        assert stable_hash("paris") == stable_hash("paris")
        assert stable_hash("paris") != stable_hash("cannes")

    def test_floats_are_deterministic(self):
        assert stable_hash(1.5) == stable_hash(1.5)

    def test_tuples_combine_components(self):
        assert stable_hash((1, 2)) == stable_hash((1, 2))
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_modulo_partitioning_of_ints_is_transparent(self):
        # Key property the workload generator builds on.
        for key in range(1000):
            assert stable_hash(key) % 7 == key % 7

    def test_string_hash_spreads_over_buckets(self):
        buckets = {stable_hash(f"value-{i}") % 16 for i in range(200)}
        assert len(buckets) == 16


class TestRowHelpers:
    def test_project_row(self):
        assert project_row((10, 20, 30), (2, 0)) == (30, 10)

    def test_concat_rows(self):
        assert concat_rows((1,), (2, 3)) == (1, 2, 3)

    def test_row_size_ints(self):
        assert row_size_bytes((1, 2, 3)) == 24

    def test_row_size_strings_count_length(self):
        assert row_size_bytes(("abcd",)) == 5  # 4 chars + overhead

    def test_row_size_mixed(self):
        assert row_size_bytes((1, "ab")) == 8 + 3
