"""Admission policies: ordering, victims, and the indexed queues.

The policies only ever read a job's ``tag`` / ``order`` / ``arrival``
/ ``priority`` / ``tenant`` / ``deadline`` / ``startup`` /
``complexity`` attributes, so a small stub stands in for the engine's
``_QueryJob`` and the tests exercise the queue structures directly:
admission order, overflow-victim choice, lazy deletion, and the
errors for popping what was never pushed.
"""

from dataclasses import dataclass, field
from itertools import count

import pytest

from repro.errors import WorkloadError
from repro.serve.policies import (
    POLICIES,
    EdfPolicy,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    ServingPolicy,
    make_admission_policy,
    provably_infeasible,
)

_ORDER = count()


@dataclass
class Job:
    """The attribute surface the policies consume."""

    tag: str
    arrival: float = 0.0
    priority: int = 0
    tenant: str = "default"
    startup: float = 0.0
    complexity: float = 1.0
    deadline: tuple | None = None
    order: int = field(default_factory=lambda: next(_ORDER))


class TestServingPolicyConfig:
    def test_defaults_are_the_mildest_form(self):
        config = ServingPolicy()
        assert config.policy == "fifo"
        assert config.queue_limit is None
        assert config.tenant_weights is None
        assert config.brownout is False

    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkloadError, match="unknown admission policy"):
            ServingPolicy(policy="lottery")

    def test_queue_limit_must_hold_at_least_one(self):
        with pytest.raises(WorkloadError, match="queue_limit"):
            ServingPolicy(queue_limit=0)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_brownout_factor_bounds(self, factor):
        with pytest.raises(WorkloadError, match="brownout_factor"):
            ServingPolicy(brownout_factor=factor)

    def test_tenant_weights_validated_and_frozen(self):
        with pytest.raises(WorkloadError, match="tenant weight"):
            ServingPolicy(policy="fair_share",
                          tenant_weights={"web": 0.0})
        config = ServingPolicy(policy="fair_share",
                               tenant_weights={"web": 3.0, "batch": 1.0})
        # Normalized to a sorted tuple so the config stays hashable
        # and insertion order cannot leak into decisions.
        assert config.tenant_weights == (("batch", 1.0), ("web", 3.0))
        assert config.weight_of("web") == 3.0
        assert config.weight_of("unlisted") == 1.0

    def test_replace_copies_with_changes(self):
        config = ServingPolicy(policy="edf", queue_limit=4)
        changed = config.replace(queue_limit=8)
        assert changed.queue_limit == 8
        assert changed.policy == "edf"
        assert config.queue_limit == 4


class TestFifoPolicy:
    def test_admits_in_arrival_order(self):
        policy = FifoPolicy()
        a, b, c = Job("a"), Job("b"), Job("c")
        for job in (a, b, c):
            policy.push(job)
        assert len(policy) == 3 and bool(policy)
        assert policy.peek() is a
        policy.pop(a)
        assert policy.peek() is b
        assert policy.jobs() == [b, c]

    def test_victim_is_the_newest_waiter(self):
        policy = FifoPolicy()
        a, b, c = Job("a"), Job("b"), Job("c")
        for job in (a, b, c):
            policy.push(job)
        assert policy.victim(now=0.0) is c

    def test_pop_from_the_middle(self):
        policy = FifoPolicy()
        a, b, c = Job("a"), Job("b"), Job("c")
        for job in (a, b, c):
            policy.push(job)
        policy.remove(b)
        assert policy.jobs() == [a, c]

    def test_empty_queue(self):
        policy = FifoPolicy()
        assert policy.peek() is None
        assert policy.victim(now=0.0) is None
        assert not policy


class TestPriorityPolicy:
    def test_higher_priority_first_fifo_within_class(self):
        policy = PriorityPolicy()
        low_old = Job("low-old", arrival=0.0, priority=0)
        high = Job("high", arrival=1.0, priority=5)
        low_new = Job("low-new", arrival=2.0, priority=0)
        for job in (low_old, high, low_new):
            policy.push(job)
        assert policy.peek() is high
        policy.pop(high)
        assert policy.peek() is low_old
        policy.pop(low_old)
        assert policy.peek() is low_new

    def test_victim_is_lowest_priority_youngest(self):
        policy = PriorityPolicy()
        high = Job("high", arrival=0.0, priority=5)
        low_old = Job("low-old", arrival=1.0, priority=0)
        low_new = Job("low-new", arrival=2.0, priority=0)
        for job in (high, low_old, low_new):
            policy.push(job)
        assert policy.victim(now=3.0) is low_new
        policy.pop(low_new)
        assert policy.victim(now=3.0) is low_old
        policy.pop(low_old)
        assert policy.victim(now=3.0) is high

    def test_lazy_deletion_skims_both_heaps(self):
        policy = PriorityPolicy()
        jobs = [Job(f"j{i}", arrival=float(i), priority=i % 3)
                for i in range(9)]
        for job in jobs:
            policy.push(job)
        # Remove from the middle of both orderings; neither heap pops
        # eagerly, so peek/victim must skim the tombstones.
        for job in jobs[2:7]:
            policy.remove(job)
        assert len(policy) == 4
        survivors = {job.tag for job in policy.jobs()}
        assert survivors == {"j0", "j1", "j7", "j8"}
        assert policy.peek() is jobs[8]        # highest priority live
        assert policy.victim(now=9.0) is jobs[0]  # lowest class, only one

    def test_pop_of_unknown_job_is_an_error(self):
        policy = PriorityPolicy()
        with pytest.raises(WorkloadError, match="not in the wait queue"):
            policy.pop(Job("ghost"))


class TestEdfPolicy:
    def test_earliest_deadline_first_deadline_free_last(self):
        policy = EdfPolicy()
        loose = Job("loose", arrival=0.0, deadline=(9.0, "timeout"))
        tight = Job("tight", arrival=1.0, deadline=(2.0, "timeout"))
        free = Job("free", arrival=0.5)
        for job in (loose, tight, free):
            policy.push(job)
        assert policy.peek() is tight
        policy.pop(tight)
        assert policy.peek() is loose
        policy.pop(loose)
        assert policy.peek() is free

    def test_victim_is_least_urgent_deadline_free_first(self):
        policy = EdfPolicy()
        tight = Job("tight", arrival=0.0, deadline=(2.0, "timeout"))
        loose = Job("loose", arrival=1.0, deadline=(9.0, "timeout"))
        free_old = Job("free-old", arrival=0.5)
        free_new = Job("free-new", arrival=1.5)
        for job in (tight, loose, free_old, free_new):
            policy.push(job)
        # Deadline-free first (youngest among them), then latest
        # deadline — the head (earliest deadline) is shed last.
        assert policy.victim(now=2.0) is free_new
        policy.pop(free_new)
        assert policy.victim(now=2.0) is free_old
        policy.pop(free_old)
        assert policy.victim(now=2.0) is loose
        policy.pop(loose)
        assert policy.victim(now=2.0) is tight

    def test_only_edf_sheds_infeasible(self):
        assert EdfPolicy.sheds_infeasible
        assert not FifoPolicy.sheds_infeasible
        assert not PriorityPolicy.sheds_infeasible
        assert not FairSharePolicy.sheds_infeasible


class TestProvablyInfeasible:
    def test_no_deadline_is_never_infeasible(self):
        assert not provably_infeasible(Job("free", startup=100.0), now=50.0)

    def test_startup_overrunning_the_deadline_is_doomed(self):
        doomed = Job("doomed", startup=2.0, deadline=(5.0, "timeout"))
        assert provably_infeasible(doomed, now=4.0)

    def test_exactly_meeting_the_deadline_is_still_feasible(self):
        # Conservative bound: strict overrun only (now + startup >
        # deadline), never shed a query that could still have made it.
        edge = Job("edge", startup=2.0, deadline=(5.0, "timeout"))
        assert not provably_infeasible(edge, now=3.0)
        assert provably_infeasible(edge, now=3.0 + 1e-9)


class TestFairSharePolicy:
    @staticmethod
    def make(weights=None):
        return FairSharePolicy(ServingPolicy(policy="fair_share",
                                             tenant_weights=weights))

    def test_least_share_tenant_goes_first(self):
        policy = self.make()
        web = Job("web-0", arrival=0.0, tenant="web", complexity=4.0)
        batch = Job("batch-0", arrival=1.0, tenant="batch", complexity=4.0)
        policy.push(web)
        policy.push(batch)
        # No admitted work yet: shares tie at 0, tenant name breaks it.
        assert policy.peek() is batch
        policy.pop(batch)
        policy.on_admit(batch)
        # batch now carries 4 units of admitted work; web goes next.
        web_1 = Job("web-1", arrival=2.0, tenant="web")
        policy.push(web_1)
        assert policy.peek() is web

    def test_weights_scale_the_share(self):
        policy = self.make(weights={"web": 4.0, "batch": 1.0})
        web = Job("web-0", tenant="web")
        batch = Job("batch-0", tenant="batch")
        policy.push(web)
        policy.push(batch)
        policy.on_admit(Job("web-done", tenant="web", complexity=2.0))
        policy.on_admit(Job("batch-done", tenant="batch", complexity=1.0))
        # web's share is 2/4 = 0.5, batch's is 1/1 = 1.0.
        assert policy.peek() is web

    def test_victim_is_youngest_of_the_most_over_share_tenant(self):
        policy = self.make()
        policy.on_admit(Job("hog-done", tenant="hog", complexity=10.0))
        hog_old = Job("hog-0", arrival=0.0, tenant="hog")
        hog_new = Job("hog-1", arrival=1.0, tenant="hog")
        light = Job("light-0", arrival=0.5, tenant="light")
        for job in (hog_old, hog_new, light):
            policy.push(job)
        assert policy.victim(now=2.0) is hog_new
        policy.pop(hog_new)
        assert policy.victim(now=2.0) is hog_old
        policy.pop(hog_old)
        assert policy.victim(now=2.0) is light

    def test_jobs_listed_in_arrival_order_across_tenants(self):
        policy = self.make()
        a = Job("a", tenant="t1")
        b = Job("b", tenant="t2")
        c = Job("c", tenant="t1")
        for job in (a, b, c):
            policy.push(job)
        assert policy.jobs() == [a, b, c]
        assert len(policy) == 3

    def test_pop_of_unknown_job_is_an_error(self):
        policy = self.make()
        with pytest.raises(WorkloadError, match="not in the wait queue"):
            policy.pop(Job("ghost", tenant="nobody"))


class TestFactory:
    def test_none_still_gets_the_indexed_fifo(self):
        assert isinstance(make_admission_policy(None), FifoPolicy)

    @pytest.mark.parametrize("name,cls", [
        ("fifo", FifoPolicy),
        ("priority", PriorityPolicy),
        ("fair_share", FairSharePolicy),
        ("edf", EdfPolicy),
    ])
    def test_every_policy_name_resolves(self, name, cls):
        policy = make_admission_policy(ServingPolicy(policy=name))
        assert isinstance(policy, cls)
        assert policy.name == name

    def test_registry_is_complete(self):
        assert set(POLICIES) == {"fifo", "priority", "fair_share", "edf"}
