"""Seeded open-loop arrival processes: determinism and shape.

The serving layer's reproducibility story starts here — every
arrival instant must be a pure function of (process parameters,
count, seed), strictly increasing, and long-run close to the
advertised ``mean_rate``.
"""

import math

import pytest

from repro.errors import WorkloadError
from repro.serve.arrivals import (
    ARRIVAL_PROCESSES,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrival_process,
)

PROCESSES = [
    PoissonArrivals(rate=20.0),
    MMPPArrivals(calm_rate=10.0, burst_rate=60.0,
                 calm_dwell=4.0, burst_dwell=1.0),
    DiurnalArrivals(base_rate=20.0, amplitude=0.5, period=4.0),
]


@pytest.mark.parametrize("process", PROCESSES,
                         ids=[p.name for p in PROCESSES])
class TestEveryProcess:
    def test_times_are_strictly_increasing_and_positive(self, process):
        times = process.times(500, seed=3)
        assert len(times) == 500
        assert times[0] > 0.0
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_same_seed_same_times(self, process):
        assert process.times(400, seed=11) == process.times(400, seed=11)

    def test_different_seeds_differ(self, process):
        assert process.times(50, seed=0) != process.times(50, seed=1)

    def test_empirical_rate_tracks_mean_rate(self, process):
        # Long-run arrivals per virtual second within 15 % of the
        # advertised mean (the MMPP and diurnal processes have higher
        # variance than plain Poisson, hence the generous band).
        count = 6000
        times = process.times(count, seed=0)
        empirical = count / times[-1]
        assert empirical == pytest.approx(process.mean_rate, rel=0.15)

    def test_mean_rate_is_positive(self, process):
        assert process.mean_rate > 0


class TestPoisson:
    def test_rate_must_be_positive(self):
        with pytest.raises(WorkloadError, match="rate must be > 0"):
            PoissonArrivals(rate=0.0)

    def test_mean_rate_is_the_rate(self):
        assert PoissonArrivals(rate=7.5).mean_rate == 7.5


class TestMmpp:
    def test_mean_rate_is_dwell_weighted(self):
        process = MMPPArrivals(calm_rate=10.0, burst_rate=30.0,
                               calm_dwell=4.0, burst_dwell=1.0)
        assert process.mean_rate == pytest.approx((10 * 4 + 30 * 1) / 5)

    def test_every_parameter_validated(self):
        with pytest.raises(WorkloadError, match="burst_rate"):
            MMPPArrivals(calm_rate=1.0, burst_rate=-1.0)
        with pytest.raises(WorkloadError, match="calm_dwell"):
            MMPPArrivals(calm_rate=1.0, burst_rate=2.0, calm_dwell=0.0)


class TestDiurnal:
    def test_rate_at_swings_around_base(self):
        process = DiurnalArrivals(base_rate=10.0, amplitude=0.5, period=8.0)
        assert process.rate_at(2.0) == pytest.approx(15.0)   # sin peak
        assert process.rate_at(6.0) == pytest.approx(5.0)    # sin trough
        assert process.rate_at(0.0) == pytest.approx(10.0)

    def test_amplitude_must_stay_below_one(self):
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalArrivals(base_rate=10.0, amplitude=1.0)
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalArrivals(base_rate=10.0, amplitude=-0.1)


class TestRegistry:
    @pytest.mark.parametrize("name", ARRIVAL_PROCESSES)
    def test_factory_matches_the_requested_mean_rate(self, name):
        process = make_arrival_process(name, 24.0)
        assert process.name == name
        assert math.isclose(process.mean_rate, 24.0)

    def test_unknown_name_is_an_error(self):
        with pytest.raises(WorkloadError, match="unknown arrival process"):
            make_arrival_process("sawtooth", 10.0)
