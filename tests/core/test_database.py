"""DBS3 facade: DDL, SQL execution, explain."""

import pytest

from repro.bench.workloads import skewed_fragments
from repro.core.database import DBS3
from repro.errors import CatalogError, CompilationError
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.wisconsin import generate_wisconsin


@pytest.fixture
def db():
    database = DBS3(processors=16)
    database.create_table(generate_wisconsin("A", 2000, seed=1), "unique1", 20)
    database.create_table(generate_wisconsin("B", 200, seed=2), "unique1", 20)
    return database


class TestDDL:
    def test_create_and_lookup(self, db):
        entry = db.table("A")
        assert entry.degree == 20
        assert entry.cardinality == 2000
        assert sorted(db.tables()) == ["A", "B"]

    def test_duplicate_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_table(generate_wisconsin("A", 10), "unique1", 2)

    def test_drop(self, db):
        db.drop_table("B")
        assert db.tables() == ["A"]

    def test_create_from_fragments(self):
        database = DBS3(processors=4)
        relation, fragments = skewed_fragments("S", 100, 4, 1.0)
        entry = database.create_table_from_fragments(relation, "key", fragments)
        assert entry.degree == 4
        assert entry.statistics.skew_ratio > 1.5


class TestQueries:
    def test_selection(self, db):
        result = db.query("SELECT * FROM A WHERE unique1 < 100", threads=4)
        assert result.cardinality == 100
        assert result.response_time > 0

    def test_selection_correct_rows(self, db):
        result = db.query("SELECT unique1 FROM A WHERE unique2 = 5")
        truth = [row for row in db.table("A").relation.rows
                 if row[1] == 5]
        assert result.rows == [(truth[0][0],)]

    def test_ideal_join_matches_reference(self, db):
        result = db.query("SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
                          threads=4)
        truth = db.table("A").relation.join(db.table("B").relation,
                                            "unique1", "unique1")
        assert result.cardinality == truth.cardinality
        assert sorted(result.rows) == sorted(truth.rows)

    def test_projection_applies(self, db):
        result = db.query(
            "SELECT A.unique2, B.unique2 FROM A JOIN B ON A.unique1 = B.unique1",
            threads=2)
        assert all(len(row) == 2 for row in result.rows)
        assert result.schema.names == ("unique2", "unique2_2")

    def test_auto_threads(self, db):
        result = db.query("SELECT * FROM A WHERE two = 0")
        assert result.execution.total_threads >= 1

    def test_column_accessor(self, db):
        result = db.query("SELECT unique1 FROM A WHERE unique1 < 3")
        assert sorted(result.column("unique1")) == [0, 1, 2]

    def test_bad_sql_raises(self, db):
        with pytest.raises(CompilationError):
            db.query("DELETE FROM A")


class TestExplainAndPlanExecution:
    def test_explain_mentions_operations(self, db):
        text = db.explain("SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
                          threads=4)
        assert "IdealJoin" in text
        assert "triggered" in text
        assert "4 threads" in text

    def test_execute_plan_custom(self, db):
        from repro.lera.plans import ideal_join_plan
        plan = ideal_join_plan(db.table("A"), db.table("B"),
                               "unique1", "unique1")
        schema = db.table("A").relation.schema.concat(
            db.table("B").relation.schema)
        result = db.execute_plan(plan, schema, threads=2,
                                 description="hand-built")
        assert result.cardinality == 200
        assert result.description == "hand-built"

    def test_compile_without_execution(self, db):
        compiled = db.compile("SELECT * FROM A JOIN B ON A.unique1 = B.unique1")
        assert "IdealJoin" in compiled.description

    def test_repr(self, db):
        assert "DBS3" in repr(db)

    def test_result_head_and_repr(self, db):
        result = db.query("SELECT unique1 FROM A WHERE unique1 < 50")
        assert len(result.head(5)) == 5
        assert "QueryResult" in repr(result)
