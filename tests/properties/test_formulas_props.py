"""Property-based tests of the Section 4.1 analytical model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.formulas import OperatorProfile

cost_lists = st.lists(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=100)
thread_counts = st.integers(min_value=1, max_value=128)


class TestModelProperties:
    @given(costs=cost_lists, threads=thread_counts)
    @settings(max_examples=120, deadline=None)
    def test_worst_at_least_ideal(self, costs, threads):
        profile = OperatorProfile.of(costs)
        assert profile.worst_time(threads) >= profile.ideal_time(threads) - 1e-9

    @given(costs=cost_lists, threads=thread_counts)
    @settings(max_examples=120, deadline=None)
    def test_worst_bound_consistent_with_v_bound(self, costs, threads):
        """Equations (2) and (3) describe the same bound:
        Tworst <= (1 + v) * Tideal."""
        profile = OperatorProfile.of(costs)
        lhs = profile.worst_time(threads)
        rhs = (1 + profile.v_bound(threads)) * profile.ideal_time(threads)
        assert lhs <= rhs * (1 + 1e-9)

    @given(costs=cost_lists)
    @settings(max_examples=120, deadline=None)
    def test_nmax_between_one_and_activations(self, costs):
        profile = OperatorProfile.of(costs)
        assert 1.0 - 1e-9 <= profile.nmax <= len(costs) + 1e-9

    @given(costs=cost_lists, threads=thread_counts)
    @settings(max_examples=120, deadline=None)
    def test_lower_bound_below_worst(self, costs, threads):
        profile = OperatorProfile.of(costs)
        assert profile.lower_bound_time(threads) <= profile.worst_time(threads) + 1e-9

    @given(costs=cost_lists)
    @settings(max_examples=120, deadline=None)
    def test_ideal_scales_inversely_with_threads(self, costs):
        profile = OperatorProfile.of(costs)
        assert profile.ideal_time(2) <= profile.ideal_time(1) / 2 + 1e-9 \
            or abs(profile.ideal_time(2) - profile.ideal_time(1) / 2) < 1e-9

    @given(costs=cost_lists, threads=thread_counts)
    @settings(max_examples=120, deadline=None)
    def test_uniform_costs_have_zero_skew_factor_margin(self, costs, threads):
        uniform = OperatorProfile.of([costs[0]] * len(costs))
        assert abs(uniform.skew_factor - 1.0) < 1e-9
        # v bound reduces to (n-1)/a for uniform activations
        expected = (threads - 1) / len(costs)
        assert abs(uniform.v_bound(threads) - expected) < 1e-9
