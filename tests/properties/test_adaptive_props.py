"""Property-based tests: the adaptive controller's invariants.

The controller may only ever *re-arrange* the schedule — never grow
it, never change an answer, never behave differently on replay:

* :func:`resplit_shares` conserves the thread budget exactly, never
  takes a pool's last thread, and only moves threads from consumers
  to producers;
* :func:`wave_evidence` is a pure function of the wave payload — it
  either abstains (``None``) or returns actionable evidence with the
  boost capped by the policy;
* on a uniform (fault-free) workload the adaptive policy is
  bit-identical to static and records no decision, whatever the
  thread grant;
* a strategy switch never changes a result row;
* the decision log is deterministic per seed — two identical runs
  produce byte-identical logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import SchedulingPolicy, resplit_shares, wave_evidence
from repro.bench.chaos import (
    ADAPTIVE_THREADS,
    build_adaptive_scenario,
    run_adaptive_workload,
)
from repro.engine.executor import OperationSchedule, QuerySchedule
from repro.engine.strategies import RANDOM
from repro.faults import FaultPlan, SlowdownWindow
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.workload.options import WorkloadOptions

shares_lists = st.lists(st.integers(min_value=1, max_value=20),
                        min_size=2, max_size=6)
modes_for = st.sampled_from([TRIGGERED, PIPELINED])
idle_fractions = st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False, allow_infinity=False)

#: One pool's wave stamps: (finished_at, busy_time, idle_time).
stamps = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
wave_payloads = st.lists(
    st.tuples(st.sampled_from(["scan", "join", "store", "xmit"]),
              st.lists(stamps, min_size=1, max_size=6)),
    min_size=1, max_size=4,
    unique_by=lambda op: op[0],
)


class TestResplitShareProperties:
    @given(shares=shares_lists,
           modes=st.lists(modes_for, min_size=6, max_size=6),
           starved_idle=idle_fractions)
    @settings(max_examples=200, deadline=None)
    def test_budget_conserved_and_no_pool_emptied(self, shares, modes,
                                                  starved_idle):
        modes = modes[:len(shares)]
        out = resplit_shares(shares, modes, starved_idle)
        assert sum(out) == sum(shares)
        assert all(share >= 1 for share in out)

    @given(shares=shares_lists,
           modes=st.lists(modes_for, min_size=6, max_size=6),
           starved_idle=idle_fractions)
    @settings(max_examples=200, deadline=None)
    def test_threads_only_flow_from_consumers_to_producers(
            self, shares, modes, starved_idle):
        modes = modes[:len(shares)]
        out = resplit_shares(shares, modes, starved_idle)
        for before, after, mode in zip(shares, out, modes):
            if mode == TRIGGERED:
                assert after >= before
            else:
                assert after <= before

    @given(shares=shares_lists,
           modes=st.lists(modes_for, min_size=6, max_size=6),
           starved_idle=idle_fractions)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, shares, modes, starved_idle):
        modes = modes[:len(shares)]
        assert resplit_shares(shares, modes, starved_idle) \
            == resplit_shares(shares, modes, starved_idle)

    @given(shares=shares_lists, starved_idle=idle_fractions)
    @settings(max_examples=100, deadline=None)
    def test_no_contrast_is_an_identity(self, shares, starved_idle):
        for mode in (TRIGGERED, PIPELINED):
            assert resplit_shares(shares, [mode] * len(shares),
                                  starved_idle) == shares


class TestWaveEvidenceProperties:
    @given(ops=wave_payloads)
    @settings(max_examples=150, deadline=None)
    def test_abstains_or_returns_actionable_capped_evidence(self, ops):
        policy = SchedulingPolicy(policy="adaptive")
        evidence = wave_evidence(0.0, ops, policy)
        if evidence is not None:
            assert evidence.actionable
            assert evidence.boost <= policy.boost_cap
            assert 0.0 <= evidence.starved_idle <= 1.0

    @given(ops=wave_payloads)
    @settings(max_examples=100, deadline=None)
    def test_pure_function_of_the_payload(self, ops):
        policy = SchedulingPolicy(policy="adaptive")
        assert wave_evidence(0.0, ops, policy) \
            == wave_evidence(0.0, ops, policy)

    @given(ops=wave_payloads)
    @settings(max_examples=100, deadline=None)
    def test_fully_busy_pools_yield_no_queue_wait_evidence(self, ops):
        busy_ops = [(name, [(f, max(b, 0.1), 0.0) for f, b, _ in pool])
                    for name, pool in ops]
        policy = SchedulingPolicy(policy="adaptive")
        evidence = wave_evidence(0.0, busy_ops, policy)
        if evidence is not None:
            # No pool idled, so only the Fig 12 half can have fired.
            assert evidence.boost == 1.0
            assert evidence.skewed


class TestAdaptiveWorkloadProperties:
    @given(threads=st.integers(min_value=4, max_value=14))
    @settings(max_examples=5, deadline=None)
    def test_no_signal_means_bit_identical_to_static(self, threads):
        def run(policy):
            db, plan, schema = build_adaptive_scenario()
            session = db.session(options=WorkloadOptions(
                scheduling=SchedulingPolicy(policy=policy)))
            session.submit_plan(plan, schema, threads=threads, tag="q0")
            return session.run()

        static, adaptive = run("static"), run("adaptive")
        assert adaptive.makespan == static.makespan
        assert len(adaptive.decisions) == 0
        assert {t: e.result_cardinality
                for t, e in adaptive.executions.items()} \
            == {t: e.result_cardinality
                for t, e in static.executions.items()}

    @given(factor=st.floats(min_value=4.0, max_value=12.0,
                            allow_nan=False))
    @settings(max_examples=5, deadline=None)
    def test_strategy_switch_never_changes_rows(self, factor):
        def run(policy):
            db, plan, schema = build_adaptive_scenario()
            schedule = QuerySchedule({
                node.name: OperationSchedule(5, strategy=RANDOM,
                                             allow_secondary=False)
                for node in plan.nodes})
            faults = FaultPlan(seed=0, slowdowns=(
                SlowdownWindow(0.0, float("inf"), factor,
                               operation="join1", thread_ids=(0, 1)),))
            session = db.session(options=WorkloadOptions(
                scheduling=SchedulingPolicy(policy=policy,
                                            resplit=False),
                faults=faults))
            session.submit_plan(plan, schema, threads=ADAPTIVE_THREADS,
                                schedule=schedule, tag="q0")
            return session.run()

        static, adaptive = run("static"), run("adaptive")
        assert {t: e.result_cardinality
                for t, e in adaptive.executions.items()} \
            == {t: e.result_cardinality
                for t, e in static.executions.items()}

    @given(factor=st.sampled_from([3.0, 6.0, 12.0]))
    @settings(max_examples=3, deadline=None)
    def test_decision_log_is_deterministic_per_seed(self, factor):
        first = run_adaptive_workload(factor, "adaptive")
        second = run_adaptive_workload(factor, "adaptive")
        assert first.decisions.to_json() == second.decisions.to_json()
        assert first.makespan == second.makespan
