"""Property-based tests: aggregation against a sequential reference."""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import Executor, QuerySchedule
from repro.lera.aggregates import AggregateExpr
from repro.lera.plans import aggregate_plan
from repro.machine.machine import Machine
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "grp", "val")

rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=0, max_value=9),
              st.integers(min_value=-1000, max_value=1000)),
    min_size=0, max_size=300)

functions = st.sampled_from(["count", "sum", "min", "max", "avg"])


def _execute(rows, aggregates, group_by, threads=3, degree=5):
    catalog = Catalog()
    entry = catalog.register(Relation("R", SCHEMA, rows),
                             PartitioningSpec.on("key", degree))
    plan = aggregate_plan(entry, aggregates, group_by=group_by)
    executor = Executor(Machine.uniform(processors=8))
    return executor.execute(plan, QuerySchedule.for_plan(plan, threads))


def _reference_value(function, values):
    if function == "count":
        return len(values)
    if function == "sum":
        return float(sum(values))
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    return sum(values) / len(values)


class TestAggregationProperties:
    @given(rows=rows_strategy, function=functions)
    @settings(max_examples=40, deadline=None)
    def test_grouped_matches_reference(self, rows, function):
        execution = _execute(rows, (AggregateExpr(function, "val"),), "grp")
        groups = collections.defaultdict(list)
        for _, grp, val in rows:
            groups[grp].append(val)
        produced = {row[0]: row[1] for row in execution.result_rows}
        assert set(produced) == set(groups)
        for grp, values in groups.items():
            expected = _reference_value(function, values)
            if function == "avg":
                assert abs(produced[grp] - expected) < 1e-9
            else:
                assert produced[grp] == expected

    @given(rows=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_global_count_is_cardinality(self, rows):
        execution = _execute(rows, (AggregateExpr("count"),), None)
        assert execution.result_rows == [(len(rows),)]

    @given(rows=rows_strategy,
           threads=st.integers(min_value=1, max_value=8),
           degree=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_result_independent_of_parallelism(self, rows, threads, degree):
        a = _execute(rows, (AggregateExpr("sum", "val"),), "grp",
                     threads=threads, degree=degree)
        b = _execute(rows, (AggregateExpr("sum", "val"),), "grp",
                     threads=1, degree=1)
        assert sorted(a.result_rows) == sorted(b.result_rows)
