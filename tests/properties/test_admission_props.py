"""Property-based tests on the serving layer's admission invariants.

Four contracts, each pinned at two levels — the bare policy
structures driven by synthetic jobs, and the full engine driven by
seeded open-loop arrivals:

* **Conservation** — every pushed job leaves the queue exactly once;
  every submitted query reaches exactly one terminal status.
* **No starvation** — the priority policy never sheds a query while
  a strictly lower-priority query is still waiting.
* **EDF feasibility** — the admission loop never admits a provably
  deadline-infeasible query.
* **Determinism** — the full arrival + decision log is a pure
  function of the seed.
"""

from dataclasses import dataclass, field
from itertools import count as _count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.bus import (
    QUERY_ADMIT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_REJECT,
    QUERY_SUBMIT,
)
from repro.serve.harness import decision_digest, run_serving
from repro.serve.policies import (
    EdfPolicy,
    PriorityPolicy,
    ServingPolicy,
    make_admission_policy,
    provably_infeasible,
)
from repro.workload.engine import TERMINAL_STATES
from repro.workload.options import WorkloadOptions

_ORDER = _count()


@dataclass
class Job:
    tag: str
    arrival: float = 0.0
    priority: int = 0
    tenant: str = "default"
    startup: float = 0.0
    complexity: float = 1.0
    deadline: tuple | None = None
    order: int = field(default_factory=lambda: next(_ORDER))


job_sets = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.integers(min_value=0, max_value=3),
              st.one_of(st.none(),
                        st.floats(min_value=0.01, max_value=5.0,
                                  allow_nan=False)),
              st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),
    min_size=1, max_size=25)


def _build(entries):
    return [Job(f"j{i}", arrival=a, priority=p,
                deadline=None if d is None else (a + d, "timeout"),
                startup=s)
            for i, (a, p, d, s) in enumerate(entries)]


class TestPolicyConservation:
    @given(entries=job_sets,
           policy_name=st.sampled_from(["fifo", "priority", "fair_share",
                                        "edf"]),
           ops=st.lists(st.sampled_from(["admit", "shed", "withdraw"]),
                        min_size=0, max_size=40),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_job_leaves_exactly_once(self, entries, policy_name, ops,
                                           data):
        """Any interleaving of admissions, sheds and withdrawals
        removes each pushed job exactly once and never invents one."""
        jobs = _build(entries)
        for job in jobs:
            job.tenant = f"t{job.priority % 2}"
        policy = make_admission_policy(ServingPolicy(policy=policy_name))
        pending = list(jobs)
        departed: list[Job] = []
        for op in ops:
            if pending and (not policy or data.draw(st.booleans(),
                                                   label="push next")):
                policy.push(pending.pop(0))
                continue
            if not policy:
                break
            if op == "admit":
                job = policy.peek()
                policy.pop(job)
                policy.on_admit(job)
            elif op == "shed":
                job = policy.victim(now=11.0)
                policy.remove(job)
            else:
                job = data.draw(st.sampled_from(policy.jobs()),
                                label="withdraw")
                policy.remove(job)
            departed.append(job)
        leftover = policy.jobs()
        assert len(departed) + len(leftover) + len(pending) == len(jobs)
        seen = {id(j) for j in departed} | {id(j) for j in leftover}
        seen |= {id(j) for j in pending}
        assert len(seen) == len(jobs)
        assert len(policy) == len(leftover)


class TestPolicyOrdering:
    @given(entries=job_sets)
    @settings(max_examples=60, deadline=None)
    def test_priority_dequeues_by_class_then_arrival(self, entries):
        jobs = _build(entries)
        policy = PriorityPolicy()
        for job in jobs:
            policy.push(job)
        order = []
        while policy:
            job = policy.peek()
            policy.pop(job)
            order.append(job)
        expected = sorted(jobs, key=lambda j: (-j.priority, j.arrival,
                                               j.order))
        assert [j.tag for j in order] == [j.tag for j in expected]

    @given(entries=job_sets)
    @settings(max_examples=60, deadline=None)
    def test_edf_dequeues_by_deadline_then_arrival(self, entries):
        jobs = _build(entries)
        policy = EdfPolicy()
        for job in jobs:
            policy.push(job)
        order = []
        while policy:
            job = policy.peek()
            policy.pop(job)
            order.append(job)

        def key(j):
            deadline = j.deadline[0] if j.deadline else float("inf")
            return (deadline, j.arrival, j.order)
        assert [j.tag for j in order] == [j.tag for j in
                                          sorted(jobs, key=key)]

    @given(entries=job_sets)
    @settings(max_examples=60, deadline=None)
    def test_priority_victim_never_outranks_a_waiter(self, entries):
        """Shedding everything one victim at a time never picks a
        job while a strictly lower-priority job still waits — the
        policy-level no-starvation statement."""
        jobs = _build(entries)
        policy = PriorityPolicy()
        for job in jobs:
            policy.push(job)
        while policy:
            victim = policy.victim(now=11.0)
            assert victim.priority == min(j.priority for j in policy.jobs())
            policy.remove(victim)

    @given(entries=job_sets)
    @settings(max_examples=60, deadline=None)
    def test_edf_victim_is_always_least_urgent(self, entries):
        jobs = _build(entries)
        policy = EdfPolicy()
        for job in jobs:
            policy.push(job)
        while policy:
            victim = policy.victim(now=11.0)
            deadlines = [(j.deadline[0] if j.deadline else float("inf"))
                         for j in policy.jobs()]
            victim_deadline = (victim.deadline[0] if victim.deadline
                               else float("inf"))
            assert victim_deadline == max(deadlines)
            policy.remove(victim)


class TestEdfFeasibility:
    @given(entries=job_sets,
           now=st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_admission_loop_never_admits_the_provably_doomed(self, entries,
                                                             now):
        """The engine's EDF admission step — shed infeasible heads,
        admit the rest — never lets a query through whose start-up
        alone already overruns its deadline."""
        jobs = _build(entries)
        policy = EdfPolicy()
        for job in jobs:
            policy.push(job)
        admitted, shed = [], []
        while policy:
            job = policy.peek()
            policy.pop(job)
            if provably_infeasible(job, now):
                shed.append(job)
            else:
                admitted.append(job)
        for job in admitted:
            if job.deadline is not None:
                assert now + job.startup <= job.deadline[0]
        for job in shed:
            assert job.deadline is not None
            assert now + job.startup > job.deadline[0]
        assert len(admitted) + len(shed) == len(jobs)


def _run(policy_name, seed, rate, queue_limit=6, count=14, observe=True):
    workload = WorkloadOptions(
        max_concurrent=2,
        serving=ServingPolicy(policy=policy_name, queue_limit=queue_limit))
    return run_serving(rate=rate, count=count, seed=seed,
                       workload=workload, observe=observe)


class TestEngineProperties:
    @given(policy_name=st.sampled_from(["fifo", "priority", "fair_share",
                                        "edf"]),
           seed=st.integers(min_value=0, max_value=2**16),
           overload=st.floats(min_value=0.3, max_value=3.0,
                              allow_nan=False))
    @settings(max_examples=8, deadline=None)
    def test_every_submission_reaches_one_terminal_status(self, policy_name,
                                                          seed, overload):
        result = _run(policy_name, seed, rate=35.0 * overload,
                      observe=False)
        assert len(result.executions) == 14
        for execution in result.executions.values():
            assert execution.status in TERMINAL_STATES
        statuses: dict[str, int] = {}
        for execution in result.executions.values():
            statuses[execution.status] = statuses.get(execution.status, 0) + 1
        assert sum(statuses.values()) == 14

    @given(policy_name=st.sampled_from(["priority", "edf"]),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_decision_log_is_a_pure_function_of_the_seed(self, policy_name,
                                                         seed):
        first = _run(policy_name, seed, rate=70.0)
        second = _run(policy_name, seed, rate=70.0)
        assert decision_digest(first) == decision_digest(second)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_priority_shedding_never_starves_the_higher_class(self, seed):
        """Replaying the decision log: whenever a queue-full shed
        fires, every query still waiting holds a priority >= the
        victim's — overload can never evict the high class to make
        room for the low one."""
        result = _run("priority", seed, rate=90.0, queue_limit=3, count=20)
        waiting: dict[str, int] = {}
        sheds = 0
        for event in result.bus.events:
            if event.kind == QUERY_SUBMIT and event.data:
                waiting[event.operation] = event.data["priority"]
            elif event.kind == QUERY_ADMIT:
                waiting.pop(event.operation, None)
            elif event.kind in (QUERY_CANCEL, QUERY_FINISH):
                waiting.pop(event.operation, None)
            elif event.kind == QUERY_REJECT:
                victim_priority = waiting.pop(event.operation)
                if event.data["reason"] == "queue_full":
                    sheds += 1
                    if waiting:
                        assert victim_priority <= min(waiting.values())
        assert sheds > 0, "rate 90 q/s never overflowed the queue"
