"""Property-based tests: fingerprint soundness for shared-work folds.

The fold pass may only merge two subplans when their canonical
fingerprints (:mod:`repro.lera.fingerprint`) are equal — and that is
*sound* only if equal fingerprints imply identical row multisets.
These tests fuzz workloads drawn from the Wisconsin query suite
(:mod:`repro.bench.wisconsin_queries` shapes, plus constant-varied
cousins that must NOT fold into them) and check the end-to-end
contract: a shared (folding) run returns, query for query, exactly
the rows of a private run — whatever the fold pass decided.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.wisconsin_queries import make_database
from repro.workload.options import WorkloadOptions

#: The fuzz vocabulary: the suite's canonical shapes plus variants
#: that differ only in a predicate constant — semantically different
#: queries whose plans are structurally identical, the exact trap an
#: unsound fingerprint would fall into.
TEMPLATES = (
    "SELECT * FROM A WHERE onePercent = 7",
    "SELECT * FROM A WHERE onePercent = 8",
    "SELECT * FROM A WHERE tenPercent = 3",
    "SELECT * FROM A JOIN Bprime ON A.unique1 = Bprime.unique1",
    ("SELECT * FROM A JOIN Bprime ON A.unique1 = Bprime.unique1 "
     "WHERE Bprime.tenPercent = 3"),
    "SELECT onePercent, MIN(unique1) FROM A GROUP BY onePercent",
)


@pytest.fixture(scope="module")
def db():
    return make_database(cardinality=2_000, degree=10, processors=16)


def _run(db, sqls, shared):
    session = db.session(options=WorkloadOptions(
        max_concurrent=len(sqls), shared=shared))
    for sql in sqls:
        session.submit(sql)
    return session.run()


def _row_sets(result):
    return {tag: sorted(result.execution(tag).result_rows)
            for tag in result.order}


def _folded_ops(result):
    return [(tag, name)
            for tag in result.order
            for name, op in result.execution(tag).operations.items()
            if op.cost_share < 1.0]


class TestFingerprintSoundness:
    @given(picks=st.lists(st.integers(min_value=0,
                                      max_value=len(TEMPLATES) - 1),
                          min_size=2, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_folding_never_changes_any_result(self, db, picks):
        """Whatever the fold pass merges, every query of a shared run
        returns exactly the rows of the private run — the executable
        form of "equal fingerprints imply equal row multisets"."""
        sqls = [TEMPLATES[i] for i in picks]
        private = _run(db, sqls, shared=False)
        shared = _run(db, sqls, shared=True)
        for tag in private.order:
            assert shared.status_of(tag) == private.status_of(tag)
        assert _row_sets(shared) == _row_sets(private)
        if len(set(picks)) < len(picks):
            # Duplicate templates over one catalog compile to subplans
            # with equal fingerprints; admitted in one batch they must
            # actually fold (liveness — sharing that never shares
            # would pass the safety check vacuously).
            assert _folded_ops(shared), \
                f"no fold in a workload with duplicates: {sqls}"

    def test_constant_varied_predicates_never_fold(self, db):
        """``onePercent = 7`` vs ``= 8``: structurally identical scans
        over the same fragments whose row sets differ — the predicate
        component of the fingerprint must keep them apart."""
        sqls = [TEMPLATES[0], TEMPLATES[1]]
        shared = _run(db, sqls, shared=True)
        assert not _folded_ops(shared)
        private = _run(db, sqls, shared=False)
        assert _row_sets(shared) == _row_sets(private)
        rows = _row_sets(shared)
        assert rows["q0"] != rows["q1"]

    def test_join_and_filtered_join_never_fold_terminals(self, db):
        """joinABprime vs joinAselBprime: the restricted join must not
        ride the unrestricted one's result, whatever their shared
        upstream looks like."""
        sqls = [TEMPLATES[3], TEMPLATES[4]]
        shared = _run(db, sqls, shared=True)
        private = _run(db, sqls, shared=False)
        assert _row_sets(shared) == _row_sets(private)
        rows = _row_sets(shared)
        assert len(rows["q0"]) != len(rows["q1"])
