"""Property-based tests: CSV round-trips and parser robustness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.io import relation_from_csv, relation_to_csv
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, Schema

# CSV-safe text: csv.writer quotes anything, but keep away from
# newline-only edge semantics of the csv module round-trip ('\r' gets
# normalized); printable without CR/LF is the realistic domain.
csv_text = st.text(
    alphabet=st.characters(blacklist_characters="\r\n",
                           blacklist_categories=("Cs",)),
    max_size=20)

int_rows = st.lists(st.tuples(st.integers(min_value=-10**12, max_value=10**12),
                              st.integers(min_value=-10**12, max_value=10**12)),
                    max_size=60)
mixed_rows = st.lists(
    st.tuples(st.integers(min_value=-10**6, max_value=10**6),
              st.floats(allow_nan=False, allow_infinity=False,
                        width=32),
              csv_text),
    max_size=60)


class TestCsvRoundTripProperties:
    @given(rows=int_rows)
    @settings(max_examples=50, deadline=None)
    def test_int_round_trip(self, rows, tmp_path_factory):
        schema = Schema.of_ints("a", "b")
        relation = Relation("R", schema, rows)
        path = tmp_path_factory.mktemp("csv") / "r.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv("R", path, schema)
        assert loaded.rows == rows

    @given(rows=mixed_rows)
    @settings(max_examples=40, deadline=None)
    def test_mixed_round_trip(self, rows, tmp_path_factory):
        schema = Schema([Attribute("i", "int"), Attribute("f", "float"),
                         Attribute("s", "str")])
        relation = Relation("M", schema, rows)
        path = tmp_path_factory.mktemp("csv") / "m.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv("M", path, schema)
        for original, read_back in zip(rows, loaded.rows):
            assert read_back[0] == original[0]
            assert read_back[1] == float(original[1])
            assert read_back[2] == original[2]
