"""Property-based tests on the monitor/alert layer.

Random small workloads under randomly-drawn rule thresholds must
always produce a *lawful* alert log:

* every fired alert records a genuine crossing (value at or past its
  threshold, stamped inside the simulation bounds);
* exactly one alert per crossing — event keys never repeat, condition
  keys never overlap (a key re-fires only after it resolved);
* resolve-on-recovery — a resolved alert closes no earlier than it
  fired, and at most one alert per (rule, key) is still active at the
  end of the run;
* monitors are pure observers — a monitored run is bit-identical
  (event stream, makespan, per-query response times) to a bare one,
  and no rules means no alert bus at all;
* the log is deterministic — the same workload under the same rules
  fires byte-for-byte the same alerts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DBS3,
    ObservabilityOptions,
    WorkloadOptions,
    generate_wisconsin,
)

#: Rules whose alerts are one-shot events: each key marks one crossing
#: and can never fire twice.
EVENT_RULES = {"admission_wait", "straggler"}

QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
)


def _make_db() -> DBS3:
    db = DBS3(processors=24)
    db.create_table(generate_wisconsin("A", 300, seed=1), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("B", 50, seed=2), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("C", 250, seed=3), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("D", 40, seed=4), "unique1",
                    degree=6)
    return db


submissions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(QUERIES) - 1),
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False)),
    min_size=1, max_size=5)

#: Thresholds spanning "fires on everything" to "fires on nothing".
workloads = st.fixed_dictionaries({
    "submissions": submissions,
    "max_concurrent": st.integers(min_value=1, max_value=4),
    "slo": st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
    "ceiling": st.floats(min_value=1e-6, max_value=10.0,
                         allow_nan=False),
    "ratio": st.floats(min_value=1.01, max_value=50.0, allow_nan=False),
    "burn_budget": st.floats(min_value=0.05, max_value=0.95,
                             allow_nan=False),
})


def _options(spec) -> WorkloadOptions:
    from repro.obs.monitor import default_monitors
    return WorkloadOptions(
        max_concurrent=spec["max_concurrent"],
        observability=ObservabilityOptions(monitors=default_monitors(
            slo=spec["slo"], admission_ceiling=spec["ceiling"],
            straggler_ratio=spec["ratio"],
            burn_budget=spec["burn_budget"])))


def _run(spec, options: WorkloadOptions | None = None):
    session = _make_db().session(
        options=options if options is not None else _options(spec))
    for i, (query, at) in enumerate(spec["submissions"]):
        session.submit(QUERIES[query], at=at, tag=f"q{i}")
    return session.run()


def _signature(alerts):
    return [(a.rule, a.key, a.severity, a.fired_at, a.value,
             a.threshold, a.resolved_at, a.message) for a in alerts]


class TestAlertLawfulness:
    @given(spec=workloads)
    @settings(max_examples=20, deadline=None)
    def test_every_alert_is_a_genuine_stamped_crossing(self, spec):
        result = _run(spec)
        for alert in result.alerts:
            assert alert.value >= alert.threshold, alert
            assert 0.0 <= alert.fired_at <= result.makespan, alert
            if alert.resolved_at is not None:
                assert alert.fired_at <= alert.resolved_at, alert
                assert alert.resolved_at <= result.makespan, alert

    @given(spec=workloads)
    @settings(max_examples=20, deadline=None)
    def test_exactly_one_alert_per_crossing(self, spec):
        result = _run(spec)
        by_key = {}
        for alert in result.alerts:
            by_key.setdefault((alert.rule, alert.key), []).append(alert)
        for (rule, key), alerts in by_key.items():
            if rule in EVENT_RULES or (rule == "latency_slo"
                                       and key != "burn"):
                assert len(alerts) == 1, (rule, key)
            # Condition lifecycles never overlap: a key re-fires only
            # after the previous alert resolved, and at most the last
            # one may still be active.
            assert [a.fired_at for a in alerts] == sorted(
                a.fired_at for a in alerts)
            for earlier, later in zip(alerts, alerts[1:]):
                assert earlier.resolved_at is not None, (rule, key)
                assert earlier.resolved_at <= later.fired_at, (rule, key)
            assert sum(a.active for a in alerts) <= 1, (rule, key)

    @given(spec=workloads)
    @settings(max_examples=10, deadline=None)
    def test_monitors_are_pure_observers(self, spec):
        bare = _run(spec, options=WorkloadOptions(
            max_concurrent=spec["max_concurrent"]))
        monitored = _run(spec)
        assert bare.alerts is None
        assert monitored.makespan == bare.makespan
        assert monitored.bus.events == bare.bus.events
        assert {t: monitored.execution(t).response_time
                for t in monitored.order} == \
            {t: bare.execution(t).response_time for t in bare.order}

    @given(spec=workloads)
    @settings(max_examples=10, deadline=None)
    def test_alert_log_is_deterministic(self, spec):
        assert _signature(_run(spec).alerts) == \
            _signature(_run(spec).alerts)
