"""Property-based tests: workload step 0 under shared-cost demands.

Shared-work execution feeds :func:`allocate_to_queries` *effective*
complexities — a subscriber's weight shrinks by the folded nodes and
re-grows by fractional shares (``complexity / subscribers``) of the
operators it rides on.  The grant invariants must survive arbitrary
fractional weights, including zero (a query whose whole plan folded):

* every grant is positive and never exceeds the query's demand;
* the grants sum exactly to ``min(max(budget, n), sum(demands))`` —
  the machine is fully used whenever the demands can absorb it, and
  never oversubscribed beyond the one-thread-per-query floor;
* a lone query always receives its full demand (the single-query
  parity rule);
* grants are monotone in the query's own demand — asking for more
  never yields less;
* the split only depends on complexity *ratios*: scaling every weight
  by a common factor changes nothing (so the ``1/subscribers`` share
  factors cancel when every query folds equally).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.allocation import allocate_to_queries

#: Per-query demands (threads its own schedule asked for).
demands_lists = st.lists(st.integers(min_value=1, max_value=40),
                         min_size=1, max_size=8)

budgets = st.integers(min_value=1, max_value=120)

#: Shared-cost weights: private complexities, fractional shares of a
#: folded operator, and the all-folded degenerate zero.
weights = st.one_of(
    st.floats(min_value=0.001, max_value=5.0,
              allow_nan=False, allow_infinity=False),
    st.builds(lambda c, k: c / k,
              st.floats(min_value=0.01, max_value=5.0,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=2, max_value=8)),
    st.just(0.0),
)


def _complexities(draw_list, count):
    return draw_list[:count] + [1.0] * (count - len(draw_list))


class TestQueryAllocationProperties:
    @given(demands=demands_lists, budget=budgets,
           raw=st.lists(weights, min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_grants_positive_and_capped_at_demand(self, demands, budget, raw):
        complexities = _complexities(raw, len(demands))
        grants = allocate_to_queries(budget, demands, complexities)
        assert len(grants) == len(demands)
        for grant, demand in zip(grants, demands):
            assert 1 <= grant <= demand

    @given(demands=demands_lists, budget=budgets,
           raw=st.lists(weights, min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_grants_sum_exactly_to_the_usable_budget(self, demands, budget,
                                                     raw):
        """Water-filling leaves nothing on the table and oversubscribes
        only to the one-thread floor: the sum is exactly
        ``min(max(budget, n), sum(demands))`` — except for the lone
        query, which gets its full demand whatever the budget."""
        complexities = _complexities(raw, len(demands))
        grants = allocate_to_queries(budget, demands, complexities)
        if len(demands) == 1:
            assert grants == [demands[0]]
        else:
            expected = min(max(budget, len(demands)), sum(demands))
            assert sum(grants) == expected

    @given(demands=demands_lists, budget=budgets,
           raw=st.lists(weights, min_size=8, max_size=8),
           index=st.integers(min_value=0, max_value=7),
           bump=st.integers(min_value=1, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_grant_monotone_in_own_demand(self, demands, budget, raw,
                                          index, bump):
        """Asking for more never yields less — up to one thread.

        The water-filling splits each round by largest remainder,
        which is subject to the Alabama paradox: a bigger demand can
        shift the fractional ranking and cost the asker a single
        rounding unit (e.g. demands [1, 1, 21, 13, 1] at budget 36 —
        bumping the 21 to 22 moves its grant from 21 to 20).  The
        economically meaningful guarantee is monotonicity up to that
        one-thread apportionment wobble."""
        complexities = _complexities(raw, len(demands))
        index %= len(demands)
        grants = allocate_to_queries(budget, demands, complexities)
        bumped = list(demands)
        bumped[index] += bump
        regrants = allocate_to_queries(budget, bumped, complexities)
        assert regrants[index] >= grants[index] - 1

    @given(demands=demands_lists, budget=budgets,
           raw=st.lists(weights, min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_split_depends_only_on_complexity_ratios(self, demands, budget,
                                                     raw):
        """Doubling every weight (a float-exact scaling) must not move
        a single grant: uniform fold shares cancel out."""
        complexities = _complexities(raw, len(demands))
        grants = allocate_to_queries(budget, demands, complexities)
        scaled = allocate_to_queries(budget, demands,
                                     [c * 2.0 for c in complexities])
        assert grants == scaled
