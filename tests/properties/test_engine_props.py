"""Property-based tests on the execution engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import make_join_database
from repro.engine.executor import Executor, QuerySchedule
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine

databases = st.builds(
    make_join_database,
    card_a=st.integers(min_value=50, max_value=800),
    card_b=st.integers(min_value=10, max_value=80),
    degree=st.integers(min_value=2, max_value=16),
    theta=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def _run_ideal(database, threads, strategy="random", seed=0):
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key")
    executor = Executor(Machine.uniform(processors=16))
    return executor.execute(
        plan, QuerySchedule.for_plan(plan, threads, strategy=strategy))


class TestEngineInvariants:
    @given(database=databases,
           threads=st.integers(min_value=1, max_value=12),
           strategy=st.sampled_from(["random", "lpt", "round_robin"]))
    @settings(max_examples=30, deadline=None)
    def test_every_activation_consumed_exactly_once(self, database, threads,
                                                    strategy):
        execution = _run_ideal(database, threads, strategy)
        join = execution.operation("join")
        assert join.activations == database.degree

    @given(database=databases,
           threads=st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_result_cardinality_invariant(self, database, threads):
        execution = _run_ideal(database, threads)
        assert execution.result_cardinality == database.expected_matches

    @given(database=databases,
           threads=st.integers(min_value=1, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_response_bounded_by_analysis(self, database, threads):
        """startup + Tideal <= response; response stays under a slack
        multiple of the worst bound plus machinery overhead."""
        execution = _run_ideal(execution_db := database, threads)
        profile = execution.operation("join").profile()
        lower = execution.startup_time + profile.ideal_time(threads)
        assert execution.response_time >= lower - 1e-9

    @given(database=databases,
           threads=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_assoc_join_conserves_tuples(self, database, threads):
        plan = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        executor = Executor(Machine.uniform(processors=16))
        execution = executor.execute(plan, QuerySchedule.for_plan(plan, threads))
        transmit = execution.operation("transmit")
        join = execution.operation("join")
        # every transmitted tuple becomes exactly one join activation
        assert transmit.enqueues == database.entry_b.cardinality
        assert join.activations == database.entry_b.cardinality
        assert execution.result_cardinality == database.expected_matches

    @given(database=databases)
    @settings(max_examples=20, deadline=None)
    def test_busy_time_equals_clock_progress(self, database):
        execution = _run_ideal(database, 4)
        join = execution.operation("join")
        # busy + idle fills each thread's lifetime exactly
        span = join.finished_at - join.started_at
        assert join.busy_time + join.idle_time <= span * join.threads + 1e-6
