"""Property-based tests: scheduler allocation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lera.graph import MATERIALIZED, LeraGraph
from repro.lera.operators import ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.scheduler.allocation import (
    allocate_to_chains,
    allocate_to_operations,
    choose_thread_count,
    estimated_response_time,
)
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _node(name: str, cardinality: int) -> ScanFilterSpec:
    fragments = [Fragment(name, i, SCHEMA,
                          [(j,) for j in range(max(cardinality // 2, 1))])
                 for i in range(2)]
    return ScanFilterSpec(fragments, TRUE, SCHEMA)


def _linear_dag(cardinalities):
    """chain_0 <- chain_1 <- ... (each depends on the next)."""
    graph = LeraGraph()
    names = [f"c{i}" for i in range(len(cardinalities))]
    for name, cardinality in zip(names, cardinalities):
        graph.add_node(name, _node(name, cardinality))
    for upstream, downstream in zip(names[1:], names):
        graph.add_edge(upstream, downstream, MATERIALIZED)
    graph.validate()
    return graph, names


cardinality_lists = st.lists(st.integers(min_value=2, max_value=5000),
                             min_size=1, max_size=6)
budgets = st.integers(min_value=1, max_value=64)


class TestChainAllocationProperties:
    @given(cardinalities=cardinality_lists, budget=budgets)
    @settings(max_examples=60, deadline=None)
    def test_every_chain_allocated_at_least_one(self, cardinalities, budget):
        graph, names = _linear_dag(cardinalities)
        allocation = allocate_to_chains(graph, budget, DEFAULT_COSTS)
        assert len(allocation) == len(names)
        assert all(threads >= 1 for threads in allocation.values())

    @given(cardinalities=cardinality_lists, budget=budgets)
    @settings(max_examples=60, deadline=None)
    def test_linear_dag_gives_full_budget_everywhere(self, cardinalities,
                                                     budget):
        """In a linear dependency chain each wave holds one chain, so
        every chain inherits the whole budget (single-child split)."""
        graph, names = _linear_dag(cardinalities)
        allocation = allocate_to_chains(graph, budget, DEFAULT_COSTS)
        chains = graph.chains()
        by_head = {c.head.name: c.chain_id for c in chains}
        for name in names:
            assert allocation[by_head[name]] == max(budget, 1)

    @given(weights=st.lists(st.integers(min_value=1, max_value=100),
                            min_size=2, max_size=5),
           budget=st.integers(min_value=2, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_sibling_split_sums_to_parent(self, weights, budget):
        graph = LeraGraph()
        graph.add_node("sink", _node("sink", 2))
        for i, weight in enumerate(weights):
            graph.add_node(f"p{i}", _node(f"p{i}", weight * 10))
            graph.add_edge(f"p{i}", "sink", MATERIALIZED)
        graph.validate()
        allocation = allocate_to_chains(graph, budget, DEFAULT_COSTS)
        chains = graph.chains()
        by_head = {c.head.name: c.chain_id for c in chains}
        children_total = sum(allocation[by_head[f"p{i}"]]
                             for i in range(len(weights)))
        # children split the sink's budget; minimum-1 floors may push
        # the sum above small budgets, never below
        assert children_total >= allocation[by_head["sink"]]
        assert children_total >= max(budget, len(weights))


class TestOperationAllocationProperties:
    @given(cardinalities=st.lists(st.integers(min_value=1, max_value=2000),
                                  min_size=1, max_size=4),
           budget=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_split_covers_chain_budget(self, cardinalities, budget):
        from repro.lera.graph import PIPELINE
        from repro.lera.operators import PipelinedJoinSpec
        # build one chain: filter head + optional pipelined join tail
        graph = LeraGraph()
        graph.add_node("head", _node("head", cardinalities[0]))
        chain_nodes = 1
        if len(cardinalities) > 1:
            fragments = [Fragment("S", i, SCHEMA, [(i,)]) for i in range(2)]
            graph.add_node("tail", PipelinedJoinSpec(
                fragments, "key", SCHEMA, "key",
                stream_cardinality=cardinalities[1]))
            graph.add_edge("head", "tail", PIPELINE)
            chain_nodes = 2
        graph.validate()
        chain = graph.chains()[0]
        allocation = allocate_to_operations(chain, budget, DEFAULT_COSTS)
        assert sum(allocation.values()) == max(budget, chain_nodes)
        assert all(threads >= 1 for threads in allocation.values())


class TestStepOneProperties:
    @given(work=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
           processors=st.integers(min_value=1, max_value=128))
    @settings(max_examples=80, deadline=None)
    def test_chosen_count_is_argmin(self, work, processors):
        machine = Machine.uniform(processors=processors)
        chosen = choose_thread_count(work, machine)
        best = estimated_response_time(work, chosen, machine)
        for candidate in (1, processors, max(1, chosen - 1), chosen + 1):
            if candidate < 1 or candidate > 2 * processors:
                continue
            assert best <= estimated_response_time(work, candidate,
                                                   machine) + 1e-9

    @given(work=st.floats(min_value=0.001, max_value=1e5, allow_nan=False),
           processors=st.integers(min_value=1, max_value=128))
    @settings(max_examples=80, deadline=None)
    def test_count_within_bounds(self, work, processors):
        machine = Machine.uniform(processors=processors)
        chosen = choose_thread_count(work, machine)
        assert 1 <= chosen <= 2 * processors
