"""Property-based tests: partitioning and skew invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.partitioning import HashPartitioner, PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.skew import zipf_cardinalities, zipf_weights
from repro.storage.tuples import stable_hash

SCHEMA = Schema.of_ints("key", "payload")

keys = st.one_of(st.integers(min_value=-10**9, max_value=10**9),
                 st.text(max_size=12))
int_rows = st.lists(
    st.tuples(st.integers(min_value=-10**9, max_value=10**9), st.integers()),
    max_size=200)
str_rows = st.lists(st.tuples(st.text(max_size=12), st.integers()),
                    max_size=200)
# One key type per relation, as a typed schema implies.
rows = st.one_of(int_rows, str_rows)
degrees = st.integers(min_value=1, max_value=40)


class TestHashPartitioningProperties:
    @given(rows=rows, degree=degrees)
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact_cover(self, rows, degree):
        """Fragments are a disjoint, complete cover of the relation."""
        relation = Relation("R", SCHEMA, rows)
        fragments = HashPartitioner(
            PartitioningSpec.on("key", degree)).partition(relation)
        assert len(fragments) == degree
        recombined = sorted(row for f in fragments for row in f.rows)
        assert recombined == sorted(rows)

    @given(rows=rows, degree=degrees)
    @settings(max_examples=60, deadline=None)
    def test_placement_is_deterministic_function_of_key(self, rows, degree):
        """Equal keys always land in the same fragment (co-location)."""
        relation = Relation("R", SCHEMA, rows)
        fragments = HashPartitioner(
            PartitioningSpec.on("key", degree)).partition(relation)
        location = {}
        for fragment in fragments:
            for row in fragment.rows:
                assert location.setdefault(row[0], fragment.index) == fragment.index

    @given(value=keys, degree=degrees)
    @settings(max_examples=100, deadline=None)
    def test_stable_hash_bucket_in_range(self, value, degree):
        assert 0 <= stable_hash(value) % degree < degree


class TestZipfProperties:
    @given(total=st.integers(min_value=0, max_value=100_000),
           degree=st.integers(min_value=1, max_value=300),
           theta=st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_cardinalities_sum_exactly(self, total, degree, theta):
        cards = zipf_cardinalities(total, degree, theta)
        assert sum(cards) == total
        assert len(cards) == degree
        assert all(c >= 0 for c in cards)

    @given(degree=st.integers(min_value=1, max_value=300),
           theta=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_weights_normalized_and_sorted(self, degree, theta):
        weights = zipf_weights(degree, theta)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))

    @given(total=st.integers(min_value=100, max_value=50_000),
           degree=st.integers(min_value=2, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_more_skew_bigger_largest_fragment(self, total, degree):
        flat = zipf_cardinalities(total, degree, 0.0)
        steep = zipf_cardinalities(total, degree, 1.0)
        assert max(steep) >= max(flat)
