"""Parser robustness: arbitrary input never crashes uncontrolled."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.logical import (
    LogicalAggregate,
    LogicalProject,
)
from repro.compiler.parser import parse
from repro.errors import CompilationError

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z_0-9]{0,8}", fullmatch=True)


class TestParserRobustness:
    @given(text=st.text(max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_raises_compilation_error_or_parses(self, text):
        """No input crashes with anything but CompilationError."""
        try:
            tree = parse(text)
        except CompilationError:
            return
        assert isinstance(tree, (LogicalProject, LogicalAggregate))

    @given(table=identifiers, column=identifiers,
           value=st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_wellformed_selection_always_parses(self, table, column, value):
        keywords = {"select", "from", "join", "on", "where", "and",
                    "group", "by"}
        if table.lower() in keywords or column.lower() in keywords:
            return
        tree = parse(f"SELECT * FROM {table} WHERE {column} < {value}")
        assert isinstance(tree, LogicalProject)
        comparison = tree.child.comparisons[0]
        assert comparison.attribute == column
        assert comparison.value == value

    @given(string_value=st.text(
        alphabet=st.characters(blacklist_characters="'\\\r\n",
                               blacklist_categories=("Cs",)),
        max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_string_constants_round_trip(self, string_value):
        tree = parse(f"SELECT * FROM A WHERE city = '{string_value}'")
        assert tree.child.comparisons[0].value == string_value
