"""Property-based tests on the workload telemetry span model.

Random small workloads — mixed queries, staggered arrivals, tight
admission, optional sharing, an optional cancellation and optional
timeouts — must always reconstruct to a consistent set of
:class:`~repro.obs.spans.QuerySpan`:

* every submitted query yields **exactly one** terminal span event;
* span timestamps nest inside the simulation bounds
  (submit <= admit <= grants/waves <= finish <= makespan);
* cancelled / timed-out / folded-subscriber queries carry consistent
  span links (cancel instants recorded, fold links mirrored by the
  host, hosts admitted no later than their subscribers).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DBS3,
    ExecutionOptions,
    ObservabilityOptions,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.obs.spans import (
    SPAN_CANCELLED,
    SPAN_DONE,
    SPAN_STATUSES,
    SPAN_TIMED_OUT,
    verify_spans,
)

_EPS = 1e-9

#: Two overlapping joins (fold candidates under sharing) and one
#: disjoint join that must always stay private.
QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
)


def _make_db() -> DBS3:
    options = ExecutionOptions(
        observability=ObservabilityOptions(observe=True))
    db = DBS3(processors=24, options=options)
    db.create_table(generate_wisconsin("A", 300, seed=1), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("B", 50, seed=2), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("C", 250, seed=3), "unique1",
                    degree=6)
    db.create_table(generate_wisconsin("D", 40, seed=4), "unique1",
                    degree=6)
    return db


submissions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(QUERIES) - 1),
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
        st.one_of(st.none(),
                  st.floats(min_value=0.005, max_value=0.2,
                            allow_nan=False))),
    min_size=1, max_size=5)

workloads = st.fixed_dictionaries({
    "submissions": submissions,
    "shared": st.booleans(),
    "max_concurrent": st.integers(min_value=1, max_value=4),
    "cancel": st.one_of(
        st.none(),
        st.tuples(st.integers(min_value=0, max_value=4),
                  st.floats(min_value=0.0, max_value=0.1,
                            allow_nan=False))),
})


def _run(spec):
    db = _make_db()
    session = db.session(options=WorkloadOptions(
        shared=spec["shared"],
        max_concurrent=spec["max_concurrent"],
        observability=ObservabilityOptions(observe=True)))
    handles = []
    for i, (query, at, timeout) in enumerate(spec["submissions"]):
        handles.append(session.submit(QUERIES[query], at=at,
                                      tag=f"q{i}", timeout=timeout))
    if spec["cancel"] is not None:
        index, at = spec["cancel"]
        handle = handles[index % len(handles)]
        handle.cancel(at=max(at, handle.arrival))
    return session.run()


class TestSpanProperties:
    @given(spec=workloads)
    @settings(max_examples=25, deadline=None)
    def test_exactly_one_terminal_event_per_query(self, spec):
        result = _run(spec)
        assert len(result.spans) == len(spec["submissions"])
        for span in result.spans:
            assert span.terminal_events == 1, span
            assert span.status in SPAN_STATUSES, span
            assert span.status == result.status_of(span.tag)

    @given(spec=workloads)
    @settings(max_examples=25, deadline=None)
    def test_spans_nest_within_simulation_bounds(self, spec):
        result = _run(spec)
        for span in result.spans:
            assert span.finished_at is not None
            assert span.finished_at <= result.makespan + _EPS
            if span.admitted_at is not None:
                assert span.submitted_at <= span.admitted_at + _EPS
                assert span.admitted_at <= span.finished_at + _EPS
            for grant in span.grants:
                assert (span.submitted_at - _EPS <= grant.t
                        <= span.finished_at + _EPS)
            for wave in span.waves:
                end = wave.end if wave.end is not None else wave.start
                assert span.admitted_at is not None
                assert span.admitted_at <= wave.start + _EPS
                if span.status == SPAN_DONE:
                    # Cancelled/timed-out queries are stamped at the
                    # termination instant; their waves drain past it.
                    assert end <= span.finished_at + _EPS

    @given(spec=workloads)
    @settings(max_examples=25, deadline=None)
    def test_terminal_links_are_consistent(self, spec):
        """Cancelled spans record the request, timed-out spans its
        reason, folded subscribers link both ways — and the full
        self-audit agrees with the execution bookkeeping."""
        result = _run(spec)
        for span in result.spans:
            if span.status == SPAN_CANCELLED:
                assert span.cancel_requested_at is not None
            if span.status == SPAN_TIMED_OUT:
                assert span.cancel_reason == "timeout"
            for host_tag in span.folds.values():
                host = result.spans.of(host_tag)
                assert span.tag in host.subscribers
                assert host.admitted_at is not None
                assert span.admitted_at is not None
        assert verify_spans(result.spans, result.executions,
                            result.makespan) == []
