"""Plan rendering (simple and extended views)."""

import pytest

from repro.bench.workloads import make_join_database, skewed_fragments
from repro.lera.plans import (
    assoc_join_plan,
    ideal_join_plan,
    two_phase_join_plan,
)
from repro.lera.render import render, render_extended, render_simple
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec


@pytest.fixture
def assoc(join_db):
    return assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")


class TestSimpleView:
    def test_single_chain_pipeline(self, assoc):
        text = render_simple(assoc)
        assert "Sq1:" in text
        assert "transmit (triggered, x20)" in text
        assert "--tuples-->" in text
        assert "join (pipelined, x20)" in text

    def test_algorithm_annotation(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                               algorithm="temp_index")
        assert "temp_index" in render_simple(plan)

    def test_grain_annotation(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key",
                               grain=4)
        assert "grain=4" in render_simple(plan)

    def test_materialized_dependency_shown(self, join_db):
        relation_c, fragments_c = skewed_fragments("C", 100, 4, 0.0)
        entry_c = Catalog().register_fragments(
            relation_c, PartitioningSpec.on("key", 4), fragments_c)
        plan = two_phase_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key", entry_c, "key", "key")
        text = render_simple(plan)
        assert "stored result of" in text


class TestExtendedView:
    def test_lists_instances_with_fragments(self, assoc):
        text = render_extended(assoc, "join", max_instances=30)
        assert "join_1" in text
        assert "join_20" in text
        assert "A[0]" in text
        assert "tuple queue" in text

    def test_elides_middle(self, assoc):
        text = render_extended(assoc, "transmit", max_instances=6)
        assert "more instances" in text
        assert "transmit_1" in text
        assert "transmit_20" in text
        assert "transmit_10" not in text

    def test_triggered_queue_kind(self, assoc):
        assert "trigger queue" in render_extended(assoc, "transmit")


class TestFullRender:
    def test_combined(self, assoc):
        text = render(assoc, extended=True)
        assert "Sq1:" in text
        assert "transmit_1" in text
        assert "join_1" in text
