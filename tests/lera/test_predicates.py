"""Predicate compilation and combination."""

import pytest

from repro.errors import CompilationError
from repro.lera.predicates import TRUE, attribute_predicate, conjunction
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("a", "b")


class TestAttributePredicate:
    @pytest.mark.parametrize("op,value,expected", [
        ("<", 5, True), ("<=", 3, True), (">", 3, False), (">=", 3, True),
        ("=", 3, True), ("==", 3, True), ("!=", 3, False), ("<>", 3, False),
    ])
    def test_operators(self, op, value, expected):
        predicate = attribute_predicate(SCHEMA, "a", op, value)
        assert predicate((3, 0)) is expected

    def test_resolves_position_once(self):
        predicate = attribute_predicate(SCHEMA, "b", "=", 7)
        assert predicate((0, 7))
        assert not predicate((7, 0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(CompilationError):
            attribute_predicate(SCHEMA, "a", "~", 1)

    def test_unknown_attribute_rejected(self):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            attribute_predicate(SCHEMA, "zz", "=", 1)

    def test_description(self):
        predicate = attribute_predicate(SCHEMA, "a", "<", 10)
        assert predicate.description == "a < 10"

    def test_selectivity_stored(self):
        predicate = attribute_predicate(SCHEMA, "a", "<", 10, selectivity=0.5)
        assert predicate.selectivity == 0.5


class TestConjunction:
    def test_empty_is_true(self):
        assert conjunction() is TRUE

    def test_single_passthrough(self):
        predicate = attribute_predicate(SCHEMA, "a", "<", 10)
        assert conjunction(predicate) is predicate

    def test_and_semantics(self):
        both = conjunction(attribute_predicate(SCHEMA, "a", "<", 10),
                           attribute_predicate(SCHEMA, "b", ">", 5))
        assert both((3, 9))
        assert not both((3, 1))
        assert not both((20, 9))

    def test_selectivities_multiply(self):
        both = conjunction(
            attribute_predicate(SCHEMA, "a", "<", 10, selectivity=0.5),
            attribute_predicate(SCHEMA, "b", ">", 5, selectivity=0.2))
        assert both.selectivity == pytest.approx(0.1)

    def test_unknown_selectivity_propagates(self):
        both = conjunction(
            attribute_predicate(SCHEMA, "a", "<", 10, selectivity=0.5),
            attribute_predicate(SCHEMA, "b", ">", 5))
        assert both.selectivity is None

    def test_true_accepts_everything(self):
        assert TRUE((1, 2))
        assert TRUE.selectivity == 1.0
