"""Lera graph structure, validation, chain decomposition."""

import pytest

from repro.errors import PlanError
from repro.lera.graph import MATERIALIZED, PIPELINE, LeraEdge, LeraGraph
from repro.lera.operators import (
    PipelinedJoinSpec,
    ScanFilterSpec,
    TransmitSpec,
)
from repro.lera.predicates import TRUE
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


def _frags(name, count=2, card=3):
    return [Fragment(name, i, SCHEMA, [(i + count * j, 0) for j in range(card)])
            for i in range(count)]


def _filter_spec(name="R"):
    return ScanFilterSpec(_frags(name), TRUE, SCHEMA)


def _transmit_spec(name="B"):
    return TransmitSpec(_frags(name), "key", 2)


def _pipejoin_spec(name="A"):
    return PipelinedJoinSpec(_frags(name), "key", SCHEMA, "key",
                             stream_cardinality=6)


class TestGraphConstruction:
    def test_add_node_and_lookup(self):
        graph = LeraGraph()
        graph.add_node("f", _filter_spec())
        assert "f" in graph
        assert graph.node("f").instances == 2

    def test_duplicate_node_rejected(self):
        graph = LeraGraph()
        graph.add_node("f", _filter_spec())
        with pytest.raises(PlanError):
            graph.add_node("f", _filter_spec())

    def test_edge_to_unknown_node_rejected(self):
        graph = LeraGraph()
        graph.add_node("f", _filter_spec())
        with pytest.raises(PlanError):
            graph.add_edge("f", "ghost")

    def test_self_edge_rejected(self):
        graph = LeraGraph()
        graph.add_node("f", _filter_spec())
        with pytest.raises(PlanError):
            graph.add_edge("f", "f")

    def test_unknown_edge_kind_rejected(self):
        with pytest.raises(PlanError):
            LeraEdge("a", "b", "wireless")

    def test_node_lookup_unknown_raises(self):
        with pytest.raises(PlanError):
            LeraGraph().node("nope")


class TestValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="empty"):
            LeraGraph().validate()

    def test_pipelined_node_needs_producer(self):
        graph = LeraGraph()
        graph.add_node("join", _pipejoin_spec())
        with pytest.raises(PlanError, match="no pipeline producer"):
            graph.validate()

    def test_triggered_node_cannot_have_producer(self):
        graph = LeraGraph()
        graph.add_node("t", _transmit_spec())
        graph.add_node("f", _filter_spec())
        graph.add_edge("t", "f", PIPELINE)
        with pytest.raises(PlanError, match="triggered"):
            graph.validate()

    def test_two_pipeline_consumers_rejected(self):
        graph = LeraGraph()
        graph.add_node("t", _transmit_spec())
        graph.add_node("j1", _pipejoin_spec("A1"))
        graph.add_node("j2", _pipejoin_spec("A2"))
        graph.add_edge("t", "j1", PIPELINE)
        graph.add_edge("t", "j2", PIPELINE)
        with pytest.raises(PlanError, match="pipeline consumers"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = LeraGraph()
        graph.add_node("a", _filter_spec("Ra"))
        graph.add_node("b", _filter_spec("Rb"))
        graph.add_edge("a", "b", MATERIALIZED)
        graph.add_edge("b", "a", MATERIALIZED)
        with pytest.raises(PlanError, match="cycle"):
            graph.validate()

    def test_valid_pipeline_passes(self):
        graph = LeraGraph()
        graph.add_node("t", _transmit_spec())
        graph.add_node("j", _pipejoin_spec())
        graph.add_edge("t", "j", PIPELINE)
        graph.validate()


class TestChains:
    def _two_chain_graph(self):
        graph = LeraGraph()
        graph.add_node("t", _transmit_spec())
        graph.add_node("j", _pipejoin_spec())
        graph.add_edge("t", "j", PIPELINE)
        graph.add_node("f", _filter_spec())
        graph.add_edge("f", "t", MATERIALIZED)
        return graph

    def test_single_chain(self):
        graph = LeraGraph()
        graph.add_node("t", _transmit_spec())
        graph.add_node("j", _pipejoin_spec())
        graph.add_edge("t", "j", PIPELINE)
        chains = graph.chains()
        assert len(chains) == 1
        assert chains[0].node_names() == ["t", "j"]
        assert chains[0].head.name == "t"
        assert chains[0].tail.name == "j"

    def test_two_chains_split_on_materialization(self):
        chains = self._two_chain_graph().chains()
        assert len(chains) == 2
        names = {tuple(c.node_names()) for c in chains}
        assert ("t", "j") in names
        assert ("f",) in names

    def test_chain_dependencies(self):
        graph = self._two_chain_graph()
        chains = graph.chains()
        deps = graph.chain_dependencies(chains)
        by_head = {c.head.name: c.chain_id for c in chains}
        assert deps[by_head["t"]] == {by_head["f"]}
        assert deps[by_head["f"]] == set()

    def test_chain_waves_order(self):
        graph = self._two_chain_graph()
        waves = graph.chain_waves()
        assert len(waves) == 2
        assert waves[0][0].head.name == "f"
        assert waves[1][0].head.name == "t"

    def test_single_wave_for_independent_chains(self):
        graph = LeraGraph()
        graph.add_node("f1", _filter_spec("R1"))
        graph.add_node("f2", _filter_spec("R2"))
        waves = graph.chain_waves()
        assert len(waves) == 1
        assert len(waves[0]) == 2
