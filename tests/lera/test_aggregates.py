"""Aggregate expressions, accumulators, and the AggregateSpec."""

import pytest

from repro.errors import PlanError
from repro.lera.aggregates import (
    AggregateExpr,
    Accumulator,
    aggregate_output_schema,
)
from repro.lera.operators import AggregateSpec
from repro.machine.costs import DEFAULT_COSTS
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "grp", "val")


class TestAggregateExpr:
    def test_count_star(self):
        expr = AggregateExpr("count")
        assert expr.attribute is None
        assert expr.column_name == "count"

    def test_sum_names_column(self):
        assert AggregateExpr("sum", "val").column_name == "sum_val"

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            AggregateExpr("median", "val")

    def test_non_count_requires_attribute(self):
        with pytest.raises(PlanError):
            AggregateExpr("sum")


class TestAccumulator:
    def test_count(self):
        acc = Accumulator("count")
        for _ in range(5):
            acc.add(1)
        assert acc.result() == 5

    def test_sum(self):
        acc = Accumulator("sum")
        for v in (1, 2, 3):
            acc.add(v)
        assert acc.result() == 6.0

    def test_min_max(self):
        low, high = Accumulator("min"), Accumulator("max")
        for v in (5, 2, 9):
            low.add(v)
            high.add(v)
        assert low.result() == 2
        assert high.result() == 9

    def test_avg(self):
        acc = Accumulator("avg")
        for v in (2, 4):
            acc.add(v)
        assert acc.result() == 3.0

    def test_avg_of_nothing_is_none(self):
        assert Accumulator("avg").result() is None

    def test_count_of_nothing_is_zero(self):
        assert Accumulator("count").result() == 0


class TestOutputSchema:
    def test_grouped(self):
        schema = aggregate_output_schema(
            "grp", (AggregateExpr("count"), AggregateExpr("sum", "val")))
        assert schema.names == ("grp", "count", "sum_val")

    def test_global(self):
        schema = aggregate_output_schema(None, (AggregateExpr("count"),))
        assert schema.names == ("count",)

    def test_duplicate_aggregates_suffixed(self):
        schema = aggregate_output_schema(
            None, (AggregateExpr("count"), AggregateExpr("count")))
        assert schema.names == ("count", "count_2")


class TestAggregateSpec:
    def _spec(self, group_by="grp", degree=4):
        return AggregateSpec(
            stream_schema=SCHEMA,
            group_by=group_by,
            aggregates=(AggregateExpr("count"), AggregateExpr("sum", "val")),
            degree=degree,
            stream_cardinality=100,
        )

    def test_pipelined_with_degree(self):
        spec = self._spec()
        assert spec.trigger_mode == "pipelined"
        assert spec.instances == 4
        assert spec.group_position == SCHEMA.position("grp")

    def test_global_single_instance(self):
        spec = self._spec(group_by=None, degree=1)
        assert spec.group_position is None

    def test_global_rejects_multiple_instances(self):
        with pytest.raises(PlanError):
            self._spec(group_by=None, degree=2)

    def test_value_positions(self):
        assert self._spec().value_positions() == [None, SCHEMA.position("val")]

    def test_bad_group_attribute(self):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            AggregateSpec(SCHEMA, "ghost", (AggregateExpr("count"),), 1, 10)

    def test_needs_aggregates(self):
        with pytest.raises(PlanError):
            AggregateSpec(SCHEMA, "grp", (), 1, 10)

    def test_estimates(self):
        spec = self._spec()
        per_activation = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        assert per_activation > 0
        assert spec.total_complexity(DEFAULT_COSTS) == pytest.approx(
            100 * per_activation)
        assert spec.estimated_activations() == 100
