"""Operator specs: instances, trigger modes, cost estimates."""

import pytest

from repro.errors import PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.operators import (
    JOIN_NESTED_LOOP,
    JOIN_TEMP_INDEX,
    JoinSpec,
    PipelinedJoinSpec,
    ScanFilterSpec,
    TransmitSpec,
)
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


def _fragments(name, cardinalities):
    return [Fragment(name, i, SCHEMA, [(i + 100 * j, 0) for j in range(c)])
            for i, c in enumerate(cardinalities)]


class TestScanFilterSpec:
    def test_instances_and_mode(self):
        spec = ScanFilterSpec(_fragments("R", [5, 5]), TRUE, SCHEMA)
        assert spec.instances == 2
        assert spec.trigger_mode == TRIGGERED

    def test_estimates_proportional_to_cardinality(self):
        spec = ScanFilterSpec(_fragments("R", [10, 20]), TRUE, SCHEMA)
        estimates = spec.estimated_instance_costs(DEFAULT_COSTS)
        assert estimates[1] == pytest.approx(2 * estimates[0])

    def test_output_cardinality_uses_selectivity(self):
        from repro.lera.predicates import Predicate
        spec = ScanFilterSpec(_fragments("R", [10, 10]),
                              Predicate("p", lambda r: True, 0.25), SCHEMA)
        assert spec.estimated_output_cardinality() == pytest.approx(5.0)

    def test_rejects_empty_fragments(self):
        with pytest.raises(PlanError):
            ScanFilterSpec([], TRUE, SCHEMA)


class TestJoinSpec:
    def test_mismatched_degrees_rejected(self):
        with pytest.raises(PlanError):
            JoinSpec(_fragments("A", [5, 5]), _fragments("B", [5]),
                     "key", "key")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(PlanError):
            JoinSpec(_fragments("A", [5]), _fragments("B", [5]),
                     "key", "key", algorithm="sort_merge")

    def test_nested_loop_estimate_is_product(self):
        spec = JoinSpec(_fragments("A", [10]), _fragments("B", [20]),
                        "key", "key")
        estimate = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        assert estimate == pytest.approx(200 * DEFAULT_COSTS.tuple_pair)

    def test_temp_index_estimate_has_build_and_probe(self):
        spec = JoinSpec(_fragments("A", [16]), _fragments("B", [4]),
                        "key", "key", algorithm=JOIN_TEMP_INDEX)
        estimate = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        build = DEFAULT_COSTS.index_build_cost(16)
        probe = 4 * DEFAULT_COSTS.index_probe_cost(16, 0)
        assert estimate == pytest.approx(build + probe)

    def test_output_schema_concatenates(self):
        spec = JoinSpec(_fragments("A", [1]), _fragments("B", [1]),
                        "key", "key")
        assert len(spec.output_schema) == 4

    def test_total_complexity_sums(self):
        spec = JoinSpec(_fragments("A", [10, 10]), _fragments("B", [5, 5]),
                        "key", "key")
        estimates = spec.estimated_instance_costs(DEFAULT_COSTS)
        assert spec.total_complexity(DEFAULT_COSTS) == pytest.approx(sum(estimates))


class TestTransmitSpec:
    def test_mode_and_tuples(self):
        spec = TransmitSpec(_fragments("B", [4, 6]), "key", 10)
        assert spec.trigger_mode == TRIGGERED
        assert spec.total_tuples() == 10

    def test_key_position(self):
        spec = TransmitSpec(_fragments("B", [1]), "payload", 4)
        assert spec.key_position == 1

    def test_rejects_bad_target_degree(self):
        with pytest.raises(PlanError):
            TransmitSpec(_fragments("B", [1]), "key", 0)

    def test_estimates(self):
        spec = TransmitSpec(_fragments("B", [8]), "key", 4)
        estimate = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        assert estimate == pytest.approx(8 * DEFAULT_COSTS.transmit_tuple)


class TestPipelinedJoinSpec:
    def _spec(self, cards, algorithm=JOIN_NESTED_LOOP, stream=100):
        return PipelinedJoinSpec(
            stored_fragments=_fragments("A", cards),
            stored_key="key",
            stream_schema=SCHEMA,
            stream_key="key",
            algorithm=algorithm,
            stream_cardinality=stream,
        )

    def test_mode_is_pipelined(self):
        assert self._spec([5]).trigger_mode == PIPELINED

    def test_estimated_activations_is_stream(self):
        assert self._spec([5], stream=42).estimated_activations() == 42

    def test_per_activation_estimate_tracks_fragment_size(self):
        estimates = self._spec([10, 30]).estimated_instance_costs(DEFAULT_COSTS)
        assert estimates[1] == pytest.approx(3 * estimates[0])

    def test_total_complexity_includes_build_for_index(self):
        nl = self._spec([64], stream=10).total_complexity(DEFAULT_COSTS)
        indexed = self._spec([64], JOIN_TEMP_INDEX, stream=10).total_complexity(
            DEFAULT_COSTS)
        assert indexed != nl

    def test_key_positions(self):
        spec = self._spec([5])
        assert spec.stored_key_position == 0
        assert spec.stream_key_position == 0

    def test_output_schema(self):
        assert len(self._spec([5]).output_schema) == 4
