"""Activations and trigger factories."""

from repro.lera.activation import (
    CONTROL,
    DATA,
    Activation,
    trigger,
    tuple_activation,
)


class TestActivation:
    def test_trigger_is_control(self):
        activation = trigger(3)
        assert activation.kind == CONTROL
        assert activation.is_control
        assert not activation.is_data
        assert activation.instance == 3
        assert activation.row is None

    def test_tuple_activation_carries_row(self):
        activation = tuple_activation(1, (10, 20))
        assert activation.kind == DATA
        assert activation.is_data
        assert activation.row == (10, 20)

    def test_frozen(self):
        activation = trigger(0)
        try:
            activation.instance = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised
