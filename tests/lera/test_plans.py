"""Plan builders: IdealJoin, AssocJoin, selection, filter-join, glue."""

import pytest

from repro.bench.workloads import make_join_database
from repro.errors import PlanError
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.lera.graph import MATERIALIZED
from repro.lera.plans import (
    assoc_join_plan,
    filter_join_plan,
    ideal_join_plan,
    materialized,
    selection_plan,
)
from repro.lera.predicates import TRUE, attribute_predicate
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec


@pytest.fixture
def db():
    return make_join_database(400, 40, degree=8, theta=0.0)


class TestSelectionPlan:
    def test_builds_one_triggered_node(self, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        plan = selection_plan(entry, TRUE)
        node = plan.node("filter")
        assert node.trigger_mode == TRIGGERED
        assert node.instances == 4


class TestIdealJoinPlan:
    def test_builds_single_join_node(self, db):
        plan = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        node = plan.node("join")
        assert node.trigger_mode == TRIGGERED
        assert node.instances == 8

    def test_rejects_incompatible_degrees(self, db):
        other = make_join_database(400, 40, degree=16, theta=0.0)
        with pytest.raises(PlanError, match="compatible"):
            ideal_join_plan(db.entry_a, other.entry_b, "key", "key")

    def test_rejects_non_partition_key(self, db):
        with pytest.raises(PlanError, match="partitioned on the join"):
            ideal_join_plan(db.entry_a, db.entry_b, "payload", "key")


class TestAssocJoinPlan:
    def test_builds_transmit_and_pipelined_join(self, db):
        plan = assoc_join_plan(db.entry_a, db.entry_b, "key", "key")
        assert plan.node("transmit").trigger_mode == TRIGGERED
        assert plan.node("join").trigger_mode == PIPELINED
        assert plan.pipeline_consumer("transmit") == "join"

    def test_stream_cardinality_recorded(self, db):
        plan = assoc_join_plan(db.entry_a, db.entry_b, "key", "key")
        assert plan.node("join").spec.stream_cardinality == 40

    def test_rejects_unpartitioned_stored_side(self, db):
        with pytest.raises(PlanError, match="stored operand"):
            assoc_join_plan(db.entry_a, db.entry_b, "payload", "key")

    def test_transmit_targets_stored_degree(self, db):
        plan = assoc_join_plan(db.entry_a, db.entry_b, "key", "key")
        assert plan.node("transmit").spec.target_degree == db.entry_a.degree


class TestFilterJoinPlan:
    def test_figure_one_shape(self, db):
        predicate = attribute_predicate(db.entry_b.relation.schema,
                                        "key", "<", 20, selectivity=0.5)
        plan = filter_join_plan(db.entry_b, db.entry_a, predicate,
                                "key", "key")
        assert plan.node("filter").trigger_mode == TRIGGERED
        assert plan.node("join").trigger_mode == PIPELINED
        assert plan.pipeline_consumer("filter") == "join"

    def test_stream_estimate_uses_selectivity(self, db):
        predicate = attribute_predicate(db.entry_b.relation.schema,
                                        "key", "<", 20, selectivity=0.5)
        plan = filter_join_plan(db.entry_b, db.entry_a, predicate,
                                "key", "key")
        assert plan.node("join").spec.stream_cardinality == 20


class TestMaterialized:
    def test_merges_with_dependency(self, db, catalog, small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre_filter")
        consumer = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        merged = materialized(producer, consumer, "pre_filter", "join")
        kinds = {(e.producer, e.consumer): e.kind for e in merged.edges}
        assert kinds[("pre_filter", "join")] == MATERIALIZED
        assert len(merged.chain_waves()) == 2

    def test_name_collision_rejected(self, db):
        plan_a = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        plan_b = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        with pytest.raises(PlanError, match="collision"):
            materialized(plan_a, plan_b, "join", "join")
