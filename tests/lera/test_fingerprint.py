"""Canonical subplan fingerprints: identity rules and memoization."""

from repro.bench.workloads import make_join_database
from repro.lera.fingerprint import compute_fingerprints
from repro.lera.graph import MATERIALIZED, PIPELINE, LeraGraph
from repro.lera.operators import ScanFilterSpec, StoreSpec
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.lera.predicates import TRUE, attribute_predicate
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


def _db(card_a=200, card_b=20, degree=4):
    return make_join_database(card_a, card_b, degree, theta=0.0)


def _fragments(name, count=2):
    return [Fragment(name, i, SCHEMA, [(i, i)]) for i in range(count)]


class TestIdentityRules:
    def test_same_relations_same_shape_fingerprint_equal(self):
        db = _db()
        one = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        two = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        assert one.fingerprints() == {
            name: fp for name, fp in two.fingerprints().items()}

    def test_distinct_databases_never_equal(self):
        """Same SQL shape over different catalogs: fragment identity
        keeps the fingerprints apart."""
        one = _db()
        two = _db()
        fp_one = ideal_join_plan(one.entry_a, one.entry_b,
                                 "key", "key").fingerprints()
        fp_two = ideal_join_plan(two.entry_a, two.entry_b,
                                 "key", "key").fingerprints()
        assert set(fp_one.values()).isdisjoint(set(fp_two.values()))

    def test_predicate_constants_discriminate(self):
        fragments = _fragments("A")
        lo = ScanFilterSpec(fragments,
                            attribute_predicate(SCHEMA, "key", "<", 5), SCHEMA)
        hi = ScanFilterSpec(fragments,
                            attribute_predicate(SCHEMA, "key", "<", 7), SCHEMA)
        graph = LeraGraph()
        graph.add_node("lo", lo)
        graph.add_node("hi", hi)
        fps = compute_fingerprints(graph)
        assert fps["lo"] is not None
        assert fps["lo"] != fps["hi"]

    def test_pipelined_identity_includes_producer_cone(self):
        """The AssocJoin's pipelined join embeds its transmit producer's
        fingerprint — the stream's identity, not just the operator's."""
        db = _db()
        plan = assoc_join_plan(db.entry_a, db.entry_b, "key", "key")
        fps = plan.fingerprints()
        transmit = next(fp for name, fp in fps.items()
                        if fp is not None and fp[0] == "transmit")
        join = next(fp for name, fp in fps.items()
                    if fp is not None and fp[0] == "pipelined_join")
        assert transmit in join[-1]

    def test_store_is_never_shareable(self):
        graph = LeraGraph()
        graph.add_node("scan", ScanFilterSpec(_fragments("A"), TRUE, SCHEMA))
        graph.add_node("store", StoreSpec(_fragments("tmp"), SCHEMA, "key"))
        graph.add_edge("scan", "store", PIPELINE)
        fps = compute_fingerprints(graph)
        assert fps["scan"] is not None
        assert fps["store"] is None

    def test_materialized_consumer_is_never_shareable(self):
        """A node fed through a materialized edge reads per-query
        temporaries — it and everything downstream must be private."""
        graph = LeraGraph()
        graph.add_node("scan", ScanFilterSpec(_fragments("A"), TRUE, SCHEMA))
        graph.add_node("reader", ScanFilterSpec(_fragments("B"), TRUE,
                                                SCHEMA))
        graph.add_edge("scan", "reader", MATERIALIZED)
        fps = compute_fingerprints(graph)
        assert fps["scan"] is not None
        assert fps["reader"] is None


class TestMemoization:
    def test_fingerprints_cached_until_mutation(self):
        db = _db()
        plan = ideal_join_plan(db.entry_a, db.entry_b, "key", "key")
        first = plan.fingerprints()
        assert plan.fingerprints() is first
        plan.add_node("extra", ScanFilterSpec(_fragments("X"), TRUE, SCHEMA))
        second = plan.fingerprints()
        assert second is not first
        assert "extra" in second
