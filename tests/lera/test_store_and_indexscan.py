"""Unit tests for StoreSpec and IndexScanSpec (and their DBFuncs)."""

import pytest

from repro.engine.dbfuncs import (
    ExecContext,
    IndexScanFunc,
    StoreFunc,
    make_dbfunc,
)
from repro.errors import ExecutionError, PlanError
from repro.lera.activation import trigger, tuple_activation
from repro.lera.operators import IndexScanSpec, StoreSpec
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.storage.fragment import Fragment
from repro.storage.indexes import HashIndex
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key", "payload")


def _ctx():
    return ExecContext(Machine.uniform(), owner=0)


class TestStoreSpec:
    def _spec(self, degree=3, expected=30):
        fragments = [Fragment("T", i, SCHEMA) for i in range(degree)]
        return StoreSpec(fragments, SCHEMA, "key",
                         expected_cardinality=expected)

    def test_pipelined_mode(self):
        spec = self._spec()
        assert spec.trigger_mode == "pipelined"
        assert spec.instances == 3
        assert spec.key_position == 0

    def test_estimates_use_expected_cardinality(self):
        spec = self._spec(expected=100)
        per_act = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        assert spec.total_complexity(DEFAULT_COSTS) == pytest.approx(
            100 * per_act)
        assert spec.estimated_activations() == 100

    def test_bad_key_rejected(self):
        from repro.errors import SchemaError
        fragments = [Fragment("T", 0, SCHEMA)]
        with pytest.raises(SchemaError):
            StoreSpec(fragments, SCHEMA, "ghost")

    def test_empty_fragments_rejected(self):
        with pytest.raises(PlanError):
            StoreSpec([], SCHEMA, "key")


class TestStoreFunc:
    def test_appends_to_target_fragment(self):
        spec = StoreSpec([Fragment("T", 0, SCHEMA),
                          Fragment("T", 1, SCHEMA)], SCHEMA, "key")
        func = StoreFunc(spec, DEFAULT_COSTS)
        result = func.process(1, tuple_activation(1, (7, 70)), _ctx())
        assert result.emitted == []
        assert spec.target_fragments[1].rows == [(7, 70)]
        assert result.cost > 0

    def test_rejects_control_activation(self):
        spec = StoreSpec([Fragment("T", 0, SCHEMA)], SCHEMA, "key")
        with pytest.raises(ExecutionError):
            StoreFunc(spec, DEFAULT_COSTS).process(0, trigger(0), _ctx())

    def test_factory_dispatch(self):
        spec = StoreSpec([Fragment("T", 0, SCHEMA)], SCHEMA, "key")
        assert isinstance(make_dbfunc(spec, DEFAULT_COSTS), StoreFunc)


class TestIndexScanSpec:
    def _spec(self, value=4):
        fragments = [Fragment("R", i, SCHEMA,
                              [(i + 2 * j, j) for j in range(5)])
                     for i in range(2)]
        indexes = [HashIndex(f.rows, 0) for f in fragments]
        return IndexScanSpec(fragments, indexes, "key", value, SCHEMA)

    def test_triggered_mode(self):
        spec = self._spec()
        assert spec.trigger_mode == "triggered"
        assert spec.instances == 2

    def test_index_count_must_match(self):
        fragments = [Fragment("R", 0, SCHEMA, [(1, 1)])]
        with pytest.raises(PlanError, match="indexes"):
            IndexScanSpec(fragments, [], "key", 1, SCHEMA)

    def test_estimates_are_probe_sized(self):
        spec = self._spec()
        estimate = spec.estimated_instance_costs(DEFAULT_COSTS)[0]
        full_scan = 5 * DEFAULT_COSTS.filter_tuple
        assert estimate < full_scan


class TestIndexScanFunc:
    def test_emits_matches_only(self):
        spec = TestIndexScanSpec()._spec(value=4)
        func = IndexScanFunc(spec, DEFAULT_COSTS)
        result = func.process(0, trigger(0), _ctx())
        # fragment 0 holds keys 0,2,4,6,8 -> one match
        assert result.emitted == [(4, 2)]

    def test_miss_is_empty(self):
        spec = TestIndexScanSpec()._spec(value=999)
        func = IndexScanFunc(spec, DEFAULT_COSTS)
        assert func.process(0, trigger(0), _ctx()).emitted == []

    def test_rejects_data_activation(self):
        spec = TestIndexScanSpec()._spec()
        with pytest.raises(ExecutionError):
            IndexScanFunc(spec, DEFAULT_COSTS).process(
                0, tuple_activation(0, (1, 1)), _ctx())

    def test_probe_cost_below_scan_cost(self):
        from repro.lera.operators import ScanFilterSpec
        from repro.lera.predicates import attribute_predicate
        from repro.engine.dbfuncs import FilterFunc
        index_spec = TestIndexScanSpec()._spec(value=4)
        scan_spec = ScanFilterSpec(
            index_spec.fragments,
            attribute_predicate(SCHEMA, "key", "=", 4), SCHEMA)
        probe = IndexScanFunc(index_spec, DEFAULT_COSTS).process(
            0, trigger(0), _ctx())
        scan = FilterFunc(scan_spec, DEFAULT_COSTS).process(
            0, trigger(0), _ctx())
        assert probe.emitted == scan.emitted
        assert probe.cost < scan.cost
