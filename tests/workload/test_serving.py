"""The serving layer through the engine and Session API.

Contracts under test: ``serving=None`` and a default
``ServingPolicy()`` produce bit-identical runs (the escape hatch);
a bounded queue sheds the policy's victim pre-admission with the
full client surface intact (terminal status, ``QueryShedError``,
``query.reject`` event, backpressure signal, span reject reason,
report serving section); memory- and deadline-infeasible queries
become ``rejected``/``shed`` statuses instead of raising into the
open-loop stream; and brownout without monitor rules never trips.
"""

import pytest

from repro import (
    DBS3,
    ExecutionOptions,
    ObservabilityOptions,
    ServingPolicy,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.errors import QueryRejectedError, QueryShedError
from repro.obs.bus import QUERY_REJECT, SERVE_BACKPRESSURE, SERVE_BROWNOUT
from repro.workload.session import DONE, REJECTED, SHED

SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"


@pytest.fixture
def db():
    options = ExecutionOptions(
        observability=ObservabilityOptions(trace=True, observe=True))
    db = DBS3(processors=16, options=options)
    db.create_table(generate_wisconsin("A", 600, seed=1), "unique1",
                    degree=8)
    db.create_table(generate_wisconsin("B", 60, seed=2), "unique1",
                    degree=8)
    return db


def _submit_wave(session, count=4, **kwargs):
    return [session.submit(SQL, at=i * 0.01, threads=8, tag=f"q{i}",
                           **{k: (v[i] if isinstance(v, (list, tuple)) else v)
                              for k, v in kwargs.items()})
            for i in range(count)]


class TestEscapeHatch:
    def test_default_policy_is_bit_identical_to_serving_off(self, db):
        runs = {}
        for name, serving in (("off", None), ("on", ServingPolicy())):
            session = db.session(WorkloadOptions(max_concurrent=2,
                                                 serving=serving))
            _submit_wave(session)
            runs[name] = session.run()
        off, on = runs["off"], runs["on"]
        assert on.makespan == off.makespan
        for tag in ("q0", "q1", "q2", "q3"):
            assert on.status_of(tag) == off.status_of(tag) == DONE
            assert (on.execution(tag).response_time
                    == off.execution(tag).response_time)
            assert (on.execution(tag).result_rows
                    == off.execution(tag).result_rows)


class TestQueueBoundShedding:
    def run_overloaded(self, db):
        session = db.session(WorkloadOptions(
            max_concurrent=1,
            serving=ServingPolicy(policy="priority", queue_limit=1)))
        # q0 is admitted immediately; q1 (the only high-priority
        # waiter) holds the one queue slot; q2 and q3 overflow it and
        # the priority policy sheds the lowest-priority youngest.
        handles = _submit_wave(session, priority=[0, 5, 0, 0])
        return handles, session.run()

    def test_victims_reach_a_shed_terminal_status(self, db):
        handles, result = self.run_overloaded(db)
        statuses = [h.status for h in handles]
        assert statuses == [DONE, DONE, SHED, SHED]
        assert result.status_of("q2") == SHED

    def test_result_refuses_with_query_shed_error(self, db):
        handles, _ = self.run_overloaded(db)
        with pytest.raises(QueryShedError, match="load-shed"):
            handles[2].result()
        # Partial metrics stay reachable; a shed query never
        # materialized, so it carries no operations.
        assert handles[2].execution.status == SHED
        assert not handles[2].execution.operations

    def test_reject_event_and_backpressure_signal(self, db):
        _, result = self.run_overloaded(db)
        rejects = [e for e in result.bus.events if e.kind == QUERY_REJECT]
        assert {e.operation for e in rejects} == {"q2", "q3"}
        assert all(e.data["reason"] == "queue_full" for e in rejects)
        assert all(e.data["status"] == SHED for e in rejects)
        pressure = [e for e in result.bus.events
                    if e.kind == SERVE_BACKPRESSURE]
        assert pressure and pressure[0].data["engaged"] is True
        # The queue drains by the end of the run, so the signal must
        # also disengage — backpressure is a level, not a latch.
        assert pressure[-1].data["engaged"] is False

    def test_span_and_report_surface_the_shed(self, db):
        _, result = self.run_overloaded(db)
        span = result.spans.of("q2")
        assert span.status == SHED
        assert span.reject_reason == "queue_full"
        assert not span.admitted
        assert span.terminal_events == 1
        report = result.report()
        assert report.statuses[SHED] == 2
        assert report.serving["shed"] == 2
        assert report.serving["reasons"] == {"queue_full": 2}
        assert not report.problems


class TestInfeasibleRejection:
    def test_memory_infeasible_is_rejected_not_raised(self, db):
        session = db.session(WorkloadOptions(
            memory_limit_bytes=16, serving=ServingPolicy()))
        handle = session.submit(SQL, threads=8, tag="huge")
        session.run()
        assert handle.status == REJECTED
        with pytest.raises(QueryRejectedError, match="rejected at admission"):
            handle.result()
        rejects = [e for e in session.result.bus.events
                   if e.kind == QUERY_REJECT]
        assert rejects[0].data["reason"] == "memory_infeasible"
        assert session.result.report().serving["rejected"] == 1

    def test_edf_sheds_a_provably_doomed_deadline(self, db):
        session = db.session(WorkloadOptions(
            serving=ServingPolicy(policy="edf")))
        # The sequential start-up alone overruns a deadline this
        # tight, so EDF sheds at admission instead of burning machine
        # time on a guaranteed timeout.
        doomed = session.submit(SQL, threads=8, tag="doomed",
                                timeout=1e-9)
        fine = session.submit(SQL, threads=8, tag="fine")
        result = session.run()
        assert doomed.status == SHED
        assert fine.status == DONE
        rejects = [e for e in result.bus.events if e.kind == QUERY_REJECT]
        assert rejects[0].data["reason"] == "deadline_infeasible"


class TestBrownout:
    def test_without_monitor_rules_brownout_never_trips(self, db):
        session = db.session(WorkloadOptions(
            max_concurrent=2,
            serving=ServingPolicy(brownout=True, brownout_factor=0.5)))
        _submit_wave(session)
        result = session.run()
        assert all(result.status_of(f"q{i}") == DONE for i in range(4))
        assert not [e for e in result.bus.events
                    if e.kind == SERVE_BROWNOUT]
        assert not result.report().serving.get("brownout_tripped", False)
