"""The workload engine: admission, step 0, and dynamic reallocation.

Acceptance behaviors from the concurrent-workload design:

* a multi-query batch finishes in strictly less virtual time than the
  same queries run back-to-back (the whole point of sharing the
  machine);
* with ``max_concurrent=1`` the workload degenerates to exactly the
  serial back-to-back timing (admission queueing is faithful);
* every query completion triggers an observable re-grant, and with
  ``rebalance`` helper threads join still-running waves mid-flight.
"""

import pytest

from repro import (
    DBS3,
    AdmissionError,
    SchedulingPolicy,
    WorkloadError,
    WorkloadExecutor,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.obs.bus import QUERY_ADMIT, QUERY_FINISH, QUERY_GRANT, QUERY_SUBMIT
from repro.workload.engine import QuerySubmission

QUERIES = [
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
    "SELECT * FROM A JOIN D ON A.unique1 = D.unique1",
    "SELECT * FROM C JOIN B ON C.unique1 = B.unique1",
]


@pytest.fixture(scope="module")
def db():
    db = DBS3(processors=72)
    db.create_table(generate_wisconsin("A", 6_000), "unique1", degree=60)
    db.create_table(generate_wisconsin("B", 600), "unique1", degree=60)
    db.create_table(generate_wisconsin("C", 4_000), "unique1", degree=60)
    db.create_table(generate_wisconsin("D", 400), "unique1", degree=60)
    return db


@pytest.fixture(scope="module")
def serial_times(db):
    return {sql: db.query(sql).execution.response_time for sql in QUERIES}


def _submission(db, sql, tag, arrival=0.0):
    compiled = db.compile(sql)
    schedule = db.scheduler.schedule(compiled.plan, None)
    return QuerySubmission(tag, compiled, schedule, arrival)


class TestConcurrentSpeedup:
    def test_concurrent_makespan_beats_serial(self, db, serial_times):
        session = db.session()
        for sql in QUERIES:
            session.submit(sql)
        result = session.run()
        serial = sum(serial_times.values())
        assert result.makespan < serial
        assert len(result.executions) == 4
        assert result.order == ("q0", "q1", "q2", "q3")

    def test_results_match_single_query_runs(self, db):
        session = db.session()
        handles = [session.submit(sql) for sql in QUERIES]
        for handle, sql in zip(handles, QUERIES):
            assert sorted(handle.result().rows) == sorted(db.query(sql).rows)

    def test_max_concurrent_one_degenerates_to_serial(self, db, serial_times):
        session = db.session(WorkloadOptions(max_concurrent=1))
        for sql in QUERIES:
            session.submit(sql)
        result = session.run()
        # One at a time, each with its full grant, start-ups chained:
        # the back-to-back serial execution.  Only the RNG stream
        # differs (one shared simulator vs a fresh one per query), so
        # the match is near- rather than bit-exact.
        assert result.makespan == pytest.approx(sum(serial_times.values()),
                                                rel=1e-3)
        admits = sorted(e.t for e in result.bus.events_of(QUERY_ADMIT))
        finishes = sorted(e.t for e in result.bus.events_of(QUERY_FINISH))
        # Each admission waits for the previous completion.
        assert admits[1:] == finishes[:-1]


class TestDynamicReallocation:
    def test_threads_regranted_at_each_completion(self, db):
        session = db.session()
        for sql in QUERIES:
            session.submit(sql)
        bus = session.run().bus
        finishes = [e.t for e in bus.events_of(QUERY_FINISH)]
        regrant_times = {e.t for e in bus.events_of(QUERY_GRANT)
                         if e.data["reason"] == "regrant"}
        # The first completion frees capacity the (still budget-
        # capped) survivors pick up; re-grants only ever happen at a
        # completion instant.  Later completions may find the
        # survivors already at full demand, hence no "every finish
        # re-grants" claim.
        assert finishes[0] in regrant_times
        assert regrant_times <= set(finishes[:-1])

    def test_helpers_join_running_waves(self, db):
        session = db.session()
        for sql in QUERIES:
            session.submit(sql)
        bus = session.run().bus
        helpers = [e for e in bus.events_of(QUERY_GRANT)
                   if e.data["reason"] == "helpers"]
        assert helpers, "no helper threads were added mid-wave"
        assert all(e.data["threads"] >= 1 and e.data["pool"] for e in helpers)

    def test_rebalance_off_still_completes(self, db, serial_times):
        session = db.session(WorkloadOptions(
            scheduling=SchedulingPolicy(rebalance=False)))
        for sql in QUERIES:
            session.submit(sql)
        result = session.run()
        assert result.makespan < sum(serial_times.values())
        bus = result.bus
        helpers = [e for e in bus.events_of(QUERY_GRANT)
                   if e.data["reason"] == "helpers"]
        assert not helpers

    def test_initial_grants_respect_the_budget(self, db):
        session = db.session()
        for sql in QUERIES:
            session.submit(sql)
        bus = session.run().bus
        initial = [e for e in bus.events_of(QUERY_GRANT)
                   if e.data["reason"] == "admission"]
        assert sum(e.data["threads"] for e in initial) <= 72


class TestArrivalsAndAdmission:
    def test_arrival_offsets_delay_execution(self, db):
        session = db.session()
        early = session.submit(QUERIES[0])
        late = session.submit(QUERIES[1], at=100.0)
        result = session.run()
        admits = {e.operation: e.t for e in result.bus.events_of(QUERY_ADMIT)}
        assert admits[early.tag] == 0.0
        assert admits[late.tag] == 100.0
        # Response time is measured from arrival, not from t=0.
        assert result.execution(late.tag).response_time < 100.0

    def test_submit_events_cover_every_query(self, db):
        session = db.session()
        for sql in QUERIES:
            session.submit(sql)
        bus = session.run().bus
        assert {e.operation for e in bus.events_of(QUERY_SUBMIT)} == \
            {"q0", "q1", "q2", "q3"}

    def test_memory_gate_staggers_admission(self, db):
        from repro.workload.admission import plan_footprint
        submissions = [_submission(db, QUERIES[0], "first"),
                       _submission(db, QUERIES[2], "second")]
        fp = max(plan_footprint(s.compiled.plan, db.machine.costs)
                 for s in submissions)
        executor = WorkloadExecutor(
            db.machine, db.executor.options,
            WorkloadOptions(memory_limit_bytes=fp))
        result = executor.execute(submissions)
        admits = sorted(e.t for e in result.bus.events_of(QUERY_ADMIT))
        # Both fit alone but not together: the second waits for the
        # first to release its footprint.
        assert admits[0] == 0.0
        assert admits[1] > 0.0

    def test_impossible_footprint_raises(self, db):
        submissions = [_submission(db, QUERIES[0], "big")]
        executor = WorkloadExecutor(db.machine, db.executor.options,
                                    WorkloadOptions(memory_limit_bytes=1))
        with pytest.raises(AdmissionError, match="never be admitted"):
            executor.execute(submissions)

    def test_duplicate_tags_rejected(self, db):
        submissions = [_submission(db, QUERIES[0], "same"),
                       _submission(db, QUERIES[1], "same")]
        with pytest.raises(WorkloadError, match="duplicate"):
            WorkloadExecutor(db.machine).execute(submissions)

    def test_fifo_admission_is_order_preserving(self, db):
        # Head is a big query, a small one queues behind it; with
        # max_concurrent=1 the small one must NOT slip past.
        session = db.session(WorkloadOptions(max_concurrent=1))
        big = session.submit(QUERIES[2])
        small = session.submit(QUERIES[1])
        bus = session.run().bus
        admits = sorted(bus.events_of(QUERY_ADMIT), key=lambda e: e.t)
        assert [e.operation for e in admits] == [big.tag, small.tag]
