"""Shared-work execution through the workload engine.

End-to-end contracts of the fold pass (``WorkloadOptions(shared=True)``):

* duplicate queries fold onto one shared operator and the batch beats
  private concurrent execution, with bit-equal result rows;
* disjoint workloads are untouched — folding never makes anything worse;
* ``shared=False`` is a true escape hatch: the event stream is
  bit-identical to the default (pre-sharing) engine;
* cost attribution is exactly fractional (shares sum to one, a fully
  duplicate query runs on zero threads of its own);
* subscribers are reference-counted: cancelling one leaves the host
  and co-subscribers undisturbed, cancelling the *host* detaches its
  primary delivery while the taps keep feeding survivors;
* a fault on a shared operator aborts the whole cohort — a subscriber
  cannot silently lose the stream it was riding;
* the foldability window is the host's sequential start-up phase:
  staggered arrivals inside it fold, later ones run private (and
  still return the right rows);
* admission prices folded work fractionally: a duplicate whose plan
  folds entirely squeezes under a memory gate that would have queued
  a private copy.
"""

import pytest

from repro import DBS3, WorkloadOptions, generate_wisconsin
from repro.faults import ActivationFaults, FaultPlan
from repro.lera.plans import ideal_join_plan
from repro.obs.bus import QUERY_ABORT, QUERY_ADMIT
from repro.workload.admission import plan_footprint
from repro.workload.session import CANCELLED, DONE, FAILED

SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"
SQL_CD = "SELECT * FROM C JOIN D ON C.unique1 = D.unique1"


@pytest.fixture(scope="module")
def db():
    db = DBS3(processors=48)
    db.create_table(generate_wisconsin("A", 2_000, seed=1), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("B", 200, seed=2), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("C", 1_500, seed=3), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("D", 150, seed=4), "unique1",
                    degree=20)
    return db


@pytest.fixture(scope="module")
def reference_rows(db):
    return {sql: sorted(db.query(sql).rows) for sql in (SQL, SQL_CD)}


def _run(db, sqls, shared, **knobs):
    session = db.session(options=WorkloadOptions(
        max_concurrent=len(sqls), shared=shared, **knobs))
    handles = [session.submit(sql, tag=f"q{i}")
               for i, sql in enumerate(sqls)]
    return session.run(), handles


def _folded(execution):
    return {name: op.cost_share
            for name, op in execution.operations.items()
            if op.cost_share < 1.0}


class TestFoldSpeedup:
    def test_duplicates_fold_and_beat_private(self, db, reference_rows):
        sqls = [SQL] * 3
        private, _ = _run(db, sqls, shared=False)
        shared, handles = _run(db, sqls, shared=True)
        assert shared.makespan < private.makespan
        for handle in handles:
            assert handle.status == DONE
            assert sorted(handle.result().rows) == reference_rows[SQL]
        # Liveness: the two subscribers actually rode the host's work.
        assert _folded(shared.execution("q1"))
        assert _folded(shared.execution("q2"))

    def test_mixed_batch_only_folds_the_duplicates(self, db,
                                                   reference_rows):
        shared, handles = _run(db, [SQL, SQL_CD, SQL], shared=True)
        assert not _folded(shared.execution("q1"))
        assert _folded(shared.execution("q2"))
        assert sorted(handles[0].result().rows) == reference_rows[SQL]
        assert sorted(handles[1].result().rows) == reference_rows[SQL_CD]
        assert sorted(handles[2].result().rows) == reference_rows[SQL]


class TestDisjointParity:
    def test_disjoint_workload_is_untouched(self, db, reference_rows):
        """No duplicate subplans: shared mode must change nothing —
        same virtual makespan, no fractional operator anywhere."""
        sqls = [SQL, SQL_CD]
        private, _ = _run(db, sqls, shared=False)
        shared, handles = _run(db, sqls, shared=True)
        assert shared.makespan == private.makespan
        for tag in shared.order:
            assert not _folded(shared.execution(tag))
        assert sorted(handles[0].result().rows) == reference_rows[SQL]
        assert sorted(handles[1].result().rows) == reference_rows[SQL_CD]


class TestEscapeHatch:
    def test_shared_off_is_bit_identical_to_default(self, db):
        """``shared=False`` takes the pre-sharing code path: the whole
        workload event stream matches the default engine event for
        event — kinds, virtual times, tags, and payloads."""
        default_session = db.session()
        explicit_session = db.session(options=WorkloadOptions(shared=False))
        for session in (default_session, explicit_session):
            for i, sql in enumerate((SQL, SQL_CD, SQL)):
                session.submit(sql, tag=f"q{i}")
        default = default_session.run()
        explicit = explicit_session.run()
        assert ([(e.kind, e.t, e.operation, e.data)
                 for e in explicit.bus.events]
                == [(e.kind, e.t, e.operation, e.data)
                    for e in default.bus.events])
        for tag in default.order:
            assert (explicit.execution(tag).response_time
                    == default.execution(tag).response_time)


class TestFractionalAccounting:
    def test_cost_shares_sum_to_one(self, db):
        """Three subscribers on one operator: every appearance carries
        exactly 1/3, and the three appearances cover the whole cost."""
        shared, _ = _run(db, [SQL] * 3, shared=True)
        shares: dict[str, float] = {}
        for tag in shared.order:
            for name, op in shared.execution(tag).operations.items():
                if op.cost_share < 1.0:
                    assert op.cost_share == pytest.approx(1.0 / 3.0)
                    shares[name] = shares.get(name, 0.0) + op.cost_share
        assert shares, "no folded operator in a batch of duplicates"
        for name, total in shares.items():
            assert total == pytest.approx(1.0), name

    def test_fully_duplicate_query_runs_on_zero_threads(self, db):
        shared, _ = _run(db, [SQL] * 2, shared=True)
        assert shared.execution("q0").total_threads > 0
        assert shared.execution("q1").total_threads == 0


class TestSubscriberCancellation:
    def test_cancelling_one_subscriber_leaves_the_rest_intact(
            self, db, reference_rows):
        session = db.session(options=WorkloadOptions(
            max_concurrent=3, shared=True))
        host = session.submit(SQL, tag="q0")
        victim = session.submit(SQL, tag="q1")
        other = session.submit(SQL, tag="q2")
        victim.cancel(at=0.05)
        session.run()
        assert victim.status == CANCELLED
        assert host.status == DONE
        assert other.status == DONE
        assert sorted(host.result().rows) == reference_rows[SQL]
        assert sorted(other.result().rows) == reference_rows[SQL]

    def test_cancelling_the_host_detaches_but_taps_keep_flowing(
            self, db, reference_rows):
        session = db.session(options=WorkloadOptions(
            max_concurrent=2, shared=True))
        host = session.submit(SQL, tag="q0")
        survivor = session.submit(SQL, tag="q1")
        host.cancel(at=0.05)
        session.run()
        assert host.status == CANCELLED
        assert survivor.status == DONE
        assert sorted(survivor.result().rows) == reference_rows[SQL]


class TestCohortAbort:
    def test_host_fault_aborts_every_subscriber(self, db,
                                                reference_rows):
        """The fault targets only the host's node name; the subscriber
        folded onto it (structural fingerprints ignore names), so its
        failure can only come from the cohort abort."""
        faults = FaultPlan(activations=(
            ActivationFaults(operation="doomed_join", rate=1.0,
                             max_retries=2),))
        session = db.session(options=WorkloadOptions(
            max_concurrent=3, shared=True, faults=faults))
        schema = db.table("A").relation.schema.concat(
            db.table("B").relation.schema)
        host = session.submit_plan(
            ideal_join_plan(db.table("A"), db.table("B"),
                            "unique1", "unique1",
                            node_name="doomed_join"),
            schema, threads=10, tag="qa")
        rider = session.submit_plan(
            ideal_join_plan(db.table("A"), db.table("B"),
                            "unique1", "unique1",
                            node_name="rider_join"),
            schema, threads=10, tag="qb")
        bystander = session.submit(SQL_CD, tag="qc")
        result = session.run()
        assert host.status == FAILED
        assert rider.status == FAILED
        assert bystander.status == DONE
        assert sorted(bystander.result().rows) == reference_rows[SQL_CD]
        aborts = {e.operation: e.data for e in result.bus.events
                  if e.kind == QUERY_ABORT}
        assert set(aborts) == {"qa", "qb"}
        assert "hosted by 'qa'" in aborts["qb"]["error"]


class TestFoldabilityWindow:
    def test_arrival_inside_startup_window_folds(self, db,
                                                 reference_rows):
        session = db.session(options=WorkloadOptions(
            max_concurrent=2, shared=True))
        session.submit(SQL, tag="q0")
        late = session.submit(SQL, tag="q1", at=0.02)
        result = session.run()
        assert _folded(result.execution("q1"))
        assert sorted(late.result().rows) == reference_rows[SQL]

    def test_arrival_past_the_window_stays_private(self, db,
                                                   reference_rows):
        """By t=0.1 the host's pool has delivered rows; a fold would
        miss them, so the late duplicate must run privately — and
        still return the full result."""
        session = db.session(options=WorkloadOptions(
            max_concurrent=2, shared=True))
        session.submit(SQL, tag="q0")
        late = session.submit(SQL, tag="q1", at=0.1)
        result = session.run()
        assert not _folded(result.execution("q1"))
        assert result.execution("q1").total_threads > 0
        assert sorted(late.result().rows) == reference_rows[SQL]


class TestFractionalAdmission:
    def test_folded_duplicate_fits_under_the_memory_gate(self, db):
        """A budget of 1.5 plans queues the second private copy, but a
        fully folded duplicate projects (almost) no new bytes and is
        admitted in the same instant as its host."""
        limit = int(plan_footprint(db.compile(SQL).plan,
                                   db.machine.costs) * 1.5)
        admit_times = {}
        for mode in (True, False):
            result, _ = _run(db, [SQL] * 2, shared=mode,
                             memory_limit_bytes=limit)
            admit_times[mode] = {e.operation: e.t
                                 for e in result.bus.events
                                 if e.kind == QUERY_ADMIT}
        assert admit_times[True]["q0"] == 0.0
        assert admit_times[True]["q1"] == 0.0
        assert admit_times[False]["q1"] > 0.0
