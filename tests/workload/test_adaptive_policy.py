"""Adaptive scheduling: the SchedulingPolicy API and the controller.

Acceptance behaviors from the diagnostics-driven-scheduling design:

* ``SchedulingPolicy`` validates its knobs at construction and nests
  in ``WorkloadOptions``; the flat ``rebalance=`` boolean survives as
  a ``DeprecationWarning`` alias;
* with the producer joins slowed, the controller re-splits the wave
  grant toward the blamed producers (conserving the thread budget
  exactly), beats the static policy in virtual time, and changes no
  result row;
* with a thread-targeted slowdown faking the Fig 12
  equal-counts/unequal-costs signature, a Random consumer switches to
  LPT — again without changing a row;
* ``policy="static"`` and the no-signal adaptive run are bit-identical
  to each other (the escape hatch);
* step 0 generalizes to multi-resource grant vectors without moving
  the CPU-only path.
"""

import warnings

import pytest

from repro.adapt import SchedulingPolicy, resplit_shares
from repro.bench.chaos import (
    ADAPTIVE_THREADS,
    build_adaptive_scenario,
    run_adaptive_workload,
)
from repro.engine.executor import (
    ExecutionError,
    ObservabilityOptions,
    OperationSchedule,
    QuerySchedule,
)
from repro.engine.strategies import LPT, RANDOM
from repro.errors import WorkloadError
from repro.faults import FaultPlan, SlowdownWindow
from repro.lera.activation import PIPELINED, TRIGGERED
from repro.obs.bus import SCHEDULE_RESPLIT, SCHEDULE_SWITCH
from repro.obs.explain import STEP_RESPLIT, STEP_SWITCH
from repro.scheduler.allocation import ResourceVector, allocate_to_queries
from repro.workload.options import WorkloadOptions


def _rows(result):
    return sum(e.result_cardinality for e in result.executions.values())


class TestSchedulingPolicyApi:
    def test_defaults_are_static(self):
        policy = SchedulingPolicy()
        assert policy.policy == "static"
        assert not policy.adaptive
        assert policy.rebalance

    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkloadError, match="unknown scheduling policy"):
            SchedulingPolicy(policy="clairvoyant")

    @pytest.mark.parametrize("field, bad", [
        ("straggler_ratio", 1.0),
        ("min_threads", 0),
        ("idle_threshold", 0.0),
        ("idle_threshold", 1.5),
        ("driver_threshold", 0.9),  # >= idle_threshold
        ("boost_cap", 0.5),
        ("switch_skew_threshold", 0.9),
        ("disk_bandwidth_bytes", 0),
    ])
    def test_thresholds_validated_at_construction(self, field, bad):
        with pytest.raises(WorkloadError, match=field):
            SchedulingPolicy(**{field: bad})

    def test_replace_returns_an_updated_copy(self):
        policy = SchedulingPolicy()
        adaptive = policy.replace(policy="adaptive", boost_cap=2.0)
        assert adaptive.adaptive and adaptive.boost_cap == 2.0
        assert policy.policy == "static" and policy.boost_cap == 4.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SchedulingPolicy().policy = "adaptive"

    def test_nested_in_workload_options(self):
        options = WorkloadOptions(
            scheduling=SchedulingPolicy(policy="adaptive"))
        assert options.scheduling.adaptive
        assert WorkloadOptions().scheduling == SchedulingPolicy()

    def test_workload_options_replace_swaps_the_block(self):
        options = WorkloadOptions(max_concurrent=2)
        swapped = options.replace(
            scheduling=SchedulingPolicy(policy="adaptive"))
        assert swapped.scheduling.adaptive
        assert swapped.max_concurrent == 2
        assert not options.scheduling.adaptive

    def test_non_policy_scheduling_rejected(self):
        with pytest.raises(WorkloadError, match="scheduling"):
            WorkloadOptions(scheduling="adaptive")


class TestDeprecatedRebalanceAlias:
    def test_flat_rebalance_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="rebalance"):
            options = WorkloadOptions(rebalance=False)
        assert options.scheduling == SchedulingPolicy(rebalance=False)
        assert options.rebalance is False

    def test_alias_conflicts_with_explicit_block(self):
        with pytest.raises(WorkloadError, match="rebalance"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                WorkloadOptions(rebalance=False,
                                scheduling=SchedulingPolicy())

    def test_default_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            WorkloadOptions()
            WorkloadOptions(scheduling=SchedulingPolicy(rebalance=False))


class TestMonitorsValidation:
    def test_non_monitor_member_rejected(self):
        with pytest.raises(ExecutionError,
                           match="must contain Monitor rules"):
            ObservabilityOptions(monitors=("latency_slo",))

    def test_monitor_list_coerced_to_tuple(self):
        from repro.obs.monitor import default_monitors
        rules = list(default_monitors())
        options = ObservabilityOptions(monitors=rules)
        assert options.monitors == tuple(rules)


class _Scenario:
    """One adaptive-vs-static pair over the chained-join scenario."""

    @staticmethod
    def run(policy, factor=6.0):
        return run_adaptive_workload(factor, policy)


class TestResplit:
    @pytest.fixture(scope="class")
    def pair(self):
        return (_Scenario.run("static"), _Scenario.run("adaptive"))

    def test_resplit_event_carries_before_and_after_grants(self, pair):
        _, adaptive = pair
        events = adaptive.bus.events_of(SCHEDULE_RESPLIT)
        assert events, "slowed producers fired no resplit"
        for event in events:
            before, after = event.data["before"], event.data["after"]
            assert before.keys() == after.keys()
            assert sum(after.values()) == sum(before.values())
            assert event.data["boost"] > 1.0
            assert event.data["drivers"]

    def test_decision_log_records_the_resplit(self, pair):
        _, adaptive = pair
        assert adaptive.decisions is not None
        steps = [d.step for d in adaptive.decisions.decisions]
        assert STEP_RESPLIT in steps

    def test_adaptive_beats_static_on_the_slowed_cell(self, pair):
        static, adaptive = pair
        assert adaptive.makespan < static.makespan

    def test_resplit_changes_no_result_row(self, pair):
        static, adaptive = pair
        assert _rows(adaptive) == _rows(static)

    def test_static_run_carries_no_decision_log(self, pair):
        static, _ = pair
        assert static.decisions is None


class TestEscapeHatch:
    def test_uniform_cell_is_bit_identical_across_policies(self):
        static = _Scenario.run("static", factor=1.0)
        adaptive = _Scenario.run("adaptive", factor=1.0)
        assert adaptive.makespan == static.makespan
        assert _rows(adaptive) == _rows(static)
        assert len(adaptive.decisions) == 0
        assert not adaptive.bus.events_of(SCHEDULE_RESPLIT)
        assert not adaptive.bus.events_of(SCHEDULE_SWITCH)


class TestStrategySwitch:
    """A thread-targeted slowdown under static binding fakes Fig 12:
    equal estimated bucket costs, unequal observed ones."""

    @staticmethod
    def run(policy):
        db, plan, schema = build_adaptive_scenario()
        schedule = QuerySchedule({
            node.name: OperationSchedule(5, strategy=RANDOM,
                                         allow_secondary=False)
            for node in plan.nodes})
        faults = FaultPlan(seed=0, slowdowns=(
            SlowdownWindow(0.0, float("inf"), 8.0,
                           operation="join1", thread_ids=(0, 1)),))
        session = db.session(options=WorkloadOptions(
            scheduling=SchedulingPolicy(policy=policy, resplit=False),
            faults=faults))
        session.submit_plan(plan, schema, threads=ADAPTIVE_THREADS,
                            schedule=schedule, tag="q0")
        return session.run()

    @pytest.fixture(scope="class")
    def pair(self):
        return (self.run("static"), self.run("adaptive"))

    def test_switch_event_names_the_operation_and_strategies(self, pair):
        _, adaptive = pair
        events = adaptive.bus.events_of(SCHEDULE_SWITCH)
        assert events, "the Fig 12 signature fired no switch"
        event = events[0]
        assert event.data["before"] == RANDOM
        assert event.data["after"] == LPT
        assert event.data["estimated_skew"] <= 1.5
        assert event.data["observed"]

    def test_decision_log_records_the_switch(self, pair):
        _, adaptive = pair
        assert [d.step for d in adaptive.decisions.decisions].count(
            STEP_SWITCH) == len(adaptive.bus.events_of(SCHEDULE_SWITCH))

    def test_switch_changes_no_result_row(self, pair):
        static, adaptive = pair
        assert _rows(adaptive) == _rows(static)


class TestResplitShares:
    def test_moves_only_the_proven_idle_fraction(self):
        assert resplit_shares([7, 3], [TRIGGERED, PIPELINED], 0.5) \
            == [8, 2]

    def test_never_takes_a_consumers_last_thread(self):
        assert resplit_shares([9, 1], [TRIGGERED, PIPELINED], 0.9) \
            == [9, 1]

    def test_no_contrast_no_move(self):
        shares = [5, 5]
        assert resplit_shares(shares, [TRIGGERED, TRIGGERED], 0.9) == shares
        assert resplit_shares(shares, [PIPELINED, PIPELINED], 0.9) == shares


class TestMultiResourceAllocation:
    def test_memory_axis_caps_the_grant(self):
        grants = allocate_to_queries(
            20, [10, 10], [1.0, 1.0],
            resources=[ResourceVector(cpu=10, memory_bytes=900),
                       ResourceVector(cpu=10, memory_bytes=100)],
            capacities=ResourceVector(cpu=20, memory_bytes=1000))
        # Equal complexity weights split the memory capacity evenly
        # (500 each): the hungry query is capped at half its demand.
        assert grants[0] == 5
        assert grants[1] == 10

    def test_unbound_axes_reproduce_the_cpu_only_split(self):
        legacy = allocate_to_queries(16, [10, 10], [1.0, 3.0])
        vectors = allocate_to_queries(
            16, [10, 10], [1.0, 3.0],
            resources=[ResourceVector(), ResourceVector()],
            capacities=ResourceVector())
        assert vectors == legacy

    def test_cpu_axis_is_an_entitlement_not_a_pass_through(self):
        # Naming the CPU axis tightens each query to its complexity-
        # weight share of the capacity *before* water-filling — the
        # malleable-scheduling semantics, deliberately different from
        # the share-then-redistribute CPU-only path.
        grants = allocate_to_queries(
            16, [10, 10], [1.0, 3.0],
            resources=[ResourceVector(cpu=10), ResourceVector(cpu=10)],
            capacities=ResourceVector(cpu=16))
        assert grants == [4, 10]

    def test_resources_without_capacities_rejected(self):
        with pytest.raises(Exception):
            allocate_to_queries(16, [10], [1.0],
                                resources=[ResourceVector(cpu=10)])

    def test_negative_axis_rejected(self):
        with pytest.raises(Exception):
            ResourceVector(cpu=-1.0)

    def test_multi_resource_workload_matches_cpu_only_when_unbound(self):
        cpu_only = _Scenario.run("static", factor=1.0)
        db, plan, schema = build_adaptive_scenario()
        session = db.session(options=WorkloadOptions(
            scheduling=SchedulingPolicy(multi_resource=True)))
        session.submit_plan(plan, schema, threads=ADAPTIVE_THREADS,
                            tag="q0")
        vectors = session.run()
        assert vectors.makespan == cpu_only.makespan
        assert _rows(vectors) == _rows(cpu_only)
