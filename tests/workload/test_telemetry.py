"""Workload telemetry acceptance: report percentiles, free disabled
mode, session accessors, and the schema-3 JSONL round trip.

The ISSUE-level contract: with telemetry *disabled* a workload run is
bit-identical (event-stream equality) to one that never heard of the
registry; with it *enabled*, the :class:`WorkloadReport` percentiles
match percentiles computed directly from ``QueryHandle.result()``
latencies, and the JSONL span export round-trips and passes the
status self-audit on a run with cancellation, a timeout, and a shared
fold.
"""

import pytest

from repro import (
    DBS3,
    ExecutionOptions,
    ObservabilityOptions,
    WorkloadError,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.faults import ActivationFaults, FaultPlan
from repro.obs.alerts import Alert
from repro.obs.export import (
    read_jsonl,
    verify_workload_jsonl,
    write_workload_jsonl,
)
from repro.obs.metrics import QUERIES_FINISHED, QUERY_LATENCY, percentile
from repro.obs.monitor import LatencySloMonitor, default_monitors
from repro.obs.spans import SPAN_DONE
from repro.prof import EngineProfiler

QUERIES = (
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
    "SELECT * FROM C JOIN D ON C.unique1 = D.unique1",
    "SELECT * FROM A JOIN D ON A.unique1 = D.unique1",
    "SELECT * FROM A JOIN B ON A.unique1 = B.unique1",
)

OBSERVE = WorkloadOptions(
    observability=ObservabilityOptions(observe=True))


def _db(observe_queries: bool = False) -> DBS3:
    options = (ExecutionOptions(observability=ObservabilityOptions(
        observe=True)) if observe_queries else None)
    db = DBS3(processors=48, options=options)
    db.create_table(generate_wisconsin("A", 1_000, seed=1), "unique1",
                    degree=10)
    db.create_table(generate_wisconsin("B", 100, seed=2), "unique1",
                    degree=10)
    db.create_table(generate_wisconsin("C", 800, seed=3), "unique1",
                    degree=10)
    db.create_table(generate_wisconsin("D", 80, seed=4), "unique1",
                    degree=10)
    return db


def _submit_all(session, stagger: float = 0.005):
    return [session.submit(sql, at=i * stagger, tag=f"q{i}")
            for i, sql in enumerate(QUERIES)]


class TestReportAcceptance:
    def test_percentiles_match_handle_latencies(self):
        """WorkloadReport p50/p95/p99 == percentile() over the
        latencies read directly off each handle's execution."""
        session = _db().session(options=OBSERVE)
        handles = _submit_all(session)
        report = session.report()
        latencies = [h.result().response_time for h in handles
                     if h.status == SPAN_DONE]
        assert report.queries == len(QUERIES)
        for q in (50, 95, 99):
            assert report.latency[f"p{q}"] == percentile(latencies, q)

    def test_registry_agrees_with_statuses(self):
        session = _db().session(options=OBSERVE)
        _submit_all(session)
        registry = session.metrics()
        assert registry.total(QUERIES_FINISHED) == len(QUERIES)
        latency = registry.get(QUERY_LATENCY, status=SPAN_DONE)
        assert latency.count == len(QUERIES)

    def test_render_and_json(self):
        session = _db().session(options=OBSERVE)
        _submit_all(session)
        report = session.report()
        assert report.clean
        text = report.render()
        assert text.startswith("workload report")
        assert "p95" in text
        payload = report.to_json()
        assert payload["queries"] == len(QUERIES)
        assert payload["problems"] == []


class TestDisabledMode:
    def test_off_by_default(self):
        session = _db().session()
        _submit_all(session)
        result = session.run()
        assert result.metrics is None
        assert result.spans is None

    def test_accessors_demand_observability(self):
        session = _db().session()
        handles = _submit_all(session)
        with pytest.raises(WorkloadError):
            session.metrics()
        with pytest.raises(WorkloadError):
            handles[0].span

    def test_event_stream_bit_identical(self):
        """Telemetry must be pure observation: the workload bus of an
        observed run equals the unobserved run's event for event, and
        no virtual timing moves."""
        plain = _db().session()
        _submit_all(plain)
        observed = _db().session(options=OBSERVE)
        _submit_all(observed)
        a, b = plain.run(), observed.run()
        assert a.makespan == b.makespan
        assert a.bus.events == b.bus.events
        assert {t: a.execution(t).response_time for t in a.order} == \
            {t: b.execution(t).response_time for t in b.order}


class TestSessionAccessors:
    def test_handle_span(self):
        session = _db().session(options=OBSERVE)
        handles = _submit_all(session)
        span = handles[0].span
        assert span.tag == "q0"
        assert span.status == SPAN_DONE
        assert span.latency == handles[0].result().response_time

    def test_shared_fold_links_visible_on_handles(self):
        session = _db().session(options=WorkloadOptions(
            shared=True,
            observability=ObservabilityOptions(observe=True)))
        handles = _submit_all(session, stagger=0.0)
        sub = handles[3].span       # duplicate of q0's join
        host = handles[0].span
        assert sub.folded
        assert "q3" in host.subscribers


class TestJsonlRoundTrip:
    def test_chaos_style_run_round_trips(self, tmp_path):
        """Cancellation + timeout + shared fold, exported and audited:
        the loaded file must agree with itself and with the live
        executions."""
        db = _db(observe_queries=True)
        operations = sorted({node.name for sql in QUERIES
                             for node in db.compile(sql).plan.nodes})
        plan = FaultPlan(seed=0, activations=(
            ActivationFaults(operation=operations[-1], rate=0.05,
                             max_retries=25, backoff=0.005),))
        session = db.session(options=WorkloadOptions(
            shared=True, faults=plan,
            observability=ObservabilityOptions(observe=True)))
        handles = _submit_all(session)
        handles[1].cancel(at=0.02)
        session.submit(QUERIES[1], at=0.0, tag="q4", timeout=0.015)
        result = session.run()
        assert result.execution("q1").status == "cancelled"
        assert result.execution("q4").status == "timed_out"
        assert any(span.folded for span in result.spans)

        path = tmp_path / "workload.jsonl"
        write_workload_jsonl(result, path)
        loaded = read_jsonl(path)
        assert loaded.is_workload
        assert loaded.makespan == result.makespan
        assert len(loaded.qspans) == 5
        assert loaded.metrics
        assert verify_workload_jsonl(loaded) == []
        assert verify_workload_jsonl(loaded, result.executions) == []


class TestSchema4Records:
    """Alerts and the self-profile ride the same JSONL as the spans."""

    def _monitored_result(self):
        session = _db().session(options=WorkloadOptions(
            observability=ObservabilityOptions(
                monitors=default_monitors(slo=1e-6), profile=True)))
        _submit_all(session)
        return session.run()

    def test_alerts_and_profile_round_trip(self, tmp_path):
        result = self._monitored_result()
        assert len(result.alerts) > 0
        path = tmp_path / "workload.jsonl"
        write_workload_jsonl(result, path)
        loaded = read_jsonl(path)
        assert [Alert.from_json(record) for record in loaded.alerts] == \
            list(result.alerts)
        profiler = EngineProfiler.from_json(loaded.profile)
        assert profiler.nodes == result.profile.nodes
        assert profiler.wall_ns == result.profile.wall_ns
        assert verify_workload_jsonl(loaded) == []

    def test_unmonitored_log_carries_no_alert_records(self, tmp_path):
        session = _db().session(options=OBSERVE)
        _submit_all(session)
        path = tmp_path / "workload.jsonl"
        write_workload_jsonl(session.run(), path)
        loaded = read_jsonl(path)
        assert loaded.alerts == []
        assert loaded.profile is None

    def test_resolved_state_survives_the_trip(self, tmp_path):
        session = _db().session(options=WorkloadOptions(
            observability=ObservabilityOptions(monitors=(
                LatencySloMonitor(slo=1e-6, burn_budget=0.25,
                                  min_finished=2),))))
        _submit_all(session)
        result = session.run()
        path = tmp_path / "workload.jsonl"
        write_workload_jsonl(result, path)
        reloaded = [Alert.from_json(r) for r in read_jsonl(path).alerts]
        assert [(a.key, a.active, a.resolved_at) for a in reloaded] == \
            [(a.key, a.active, a.resolved_at) for a in result.alerts]
