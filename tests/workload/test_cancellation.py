"""Cancellation, timeouts, and fault aborts through the Session API.

The contracts under test: a cancelled or timed-out query reaches a
clean terminal state without corrupting co-running queries; the
workload event stream records the cancellation; ``result()`` refuses
to hand out partial rows; and — the strongest isolation statement —
a survivor that runs after the machine quiesced is **bit-identical**
to never having submitted the victim at all.
"""

import pytest

from repro import (
    DBS3,
    ExecutionOptions,
    ObservabilityOptions,
    WorkloadError,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.engine.executor import OperationSchedule, QuerySchedule
from repro.engine.strategies import LPT
from repro.errors import (
    ExecutionFaultError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.faults import ActivationFaults, FaultPlan
from repro.lera.plans import ideal_join_plan
from repro.obs.bus import (
    QUERY_ABORT,
    QUERY_CANCEL,
    QUERY_FINISH,
    QUERY_GRANT,
)
from repro.workload.session import CANCELLED, DONE, FAILED, TIMED_OUT

SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"
SQL_CD = "SELECT * FROM C JOIN D ON C.unique1 = D.unique1"


@pytest.fixture
def db():
    options = ExecutionOptions(
        observability=ObservabilityOptions(trace=True, observe=True))
    db = DBS3(processors=48, options=options)
    db.create_table(generate_wisconsin("A", 2_000, seed=1), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("B", 200, seed=2), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("C", 1_500, seed=3), "unique1",
                    degree=20)
    db.create_table(generate_wisconsin("D", 150, seed=4), "unique1",
                    degree=20)
    return db


def _events(result, kind, tag=None):
    return [e for e in result.bus.events
            if e.kind == kind and (tag is None or e.operation == tag)]


def _lpt_schedule(db, compiled, threads):
    return QuerySchedule({
        node.name: OperationSchedule(threads, strategy=LPT)
        for node in compiled.plan.nodes})


class TestCancelMidRun:
    def test_states_events_and_survivor(self, db):
        session = db.session()
        victim = session.submit(SQL, threads=10, tag="victim")
        survivor = session.submit(SQL_CD, threads=10, tag="survivor")
        victim.cancel(at=0.1)
        result = session.run()

        assert victim.status == CANCELLED
        assert survivor.status == DONE
        assert survivor.result().cardinality == 150
        assert result.status_of("victim") == CANCELLED

        (cancel,) = _events(result, QUERY_CANCEL, "victim")
        assert cancel.t == 0.1
        assert cancel.data["reason"] == "cancel"
        assert cancel.data["admitted"] is True
        (finish,) = _events(result, QUERY_FINISH, "victim")
        assert finish.data["status"] == CANCELLED
        assert finish.t >= cancel.t

    def test_partial_metrics_exposed_but_result_raises(self, db):
        session = db.session()
        victim = session.submit(SQL, threads=10, tag="victim")
        victim.cancel(at=0.1)
        session.run()
        execution = victim.execution
        assert execution.status == CANCELLED
        assert execution.operations  # admitted: partial metrics exist
        with pytest.raises(QueryCancelledError, match="victim"):
            victim.result()

    def test_conservation_after_cancel(self, db):
        session = db.session()
        victim = session.submit(SQL, threads=10, tag="victim")
        victim.cancel(at=0.1)
        session.run()
        discarded = 0
        for op in victim.execution.operations.values():
            assert sum(op.queue_activations) == (
                op.activations + op.fault_retries + op.fault_aborts
                + op.discarded)
            discarded += op.discarded
        assert discarded > 0

    def test_throughput_counts_only_completed(self, db):
        session = db.session()
        session.submit(SQL, threads=10, tag="victim").cancel(at=0.1)
        session.submit(SQL_CD, threads=10, tag="survivor")
        result = session.run()
        assert result.throughput == pytest.approx(1.0 / result.makespan)


class TestCancelBeforeAdmission:
    def test_cancel_at_arrival_never_runs(self, db):
        session = db.session()
        victim = session.submit(SQL, threads=10, tag="victim")
        victim.cancel()  # at its own arrival: withdrawn pre-admission
        result = session.run()
        assert victim.status == CANCELLED
        assert victim.execution.operations == {}
        (cancel,) = _events(result, QUERY_CANCEL, "victim")
        assert cancel.data["admitted"] is False
        assert cancel.data["discarded"] == 0

    def test_cancel_validation(self, db):
        session = db.session()
        handle = session.submit(SQL, threads=10, at=1.0)
        with pytest.raises(WorkloadError, match="cancel_at"):
            handle.cancel(at=0.5)
        session.run()
        with pytest.raises(WorkloadError, match="already ran"):
            handle.cancel()


class TestTimeouts:
    def test_timeout_mid_run(self, db):
        session = db.session()
        victim = session.submit(SQL, threads=10, tag="victim",
                                timeout=0.1)
        survivor = session.submit(SQL_CD, threads=10, tag="survivor")
        result = session.run()
        assert victim.status == TIMED_OUT
        assert survivor.result().cardinality == 150
        (cancel,) = _events(result, QUERY_CANCEL, "victim")
        assert cancel.data["reason"] == "timeout"
        with pytest.raises(QueryTimeoutError, match="victim"):
            victim.result()

    def test_generous_timeout_never_fires(self, db):
        session = db.session()
        handle = session.submit(SQL, threads=10, timeout=1000.0)
        result = session.run()
        assert handle.status == DONE
        assert _events(result, QUERY_CANCEL) == []

    def test_nonpositive_timeout_rejected(self, db):
        session = db.session()
        with pytest.raises(WorkloadError, match="timeout"):
            session.submit(SQL, threads=10, timeout=0.0)


class TestFaultAborts:
    def test_victim_fails_survivor_completes(self, db):
        # The victim is a hand-built plan whose join has a unique name,
        # so the activation faults cannot touch the survivor's operators.
        faults = FaultPlan(activations=(
            ActivationFaults(operation="doomed_join", rate=1.0,
                             max_retries=2),))
        session = db.session(options=WorkloadOptions(faults=faults))
        plan = ideal_join_plan(db.table("A"), db.table("B"),
                               "unique1", "unique1",
                               node_name="doomed_join")
        schema = db.table("A").relation.schema.concat(
            db.table("B").relation.schema)
        victim = session.submit_plan(plan, schema, threads=10, tag="victim")
        survivor = session.submit(SQL_CD, threads=10, tag="survivor")
        result = session.run()

        assert victim.status == FAILED
        assert survivor.status == DONE
        assert survivor.result().cardinality == 150
        with pytest.raises(ExecutionFaultError, match="victim"):
            victim.result()
        (abort,) = _events(result, QUERY_ABORT, "victim")
        assert abort.data["failed_operation"] == "doomed_join"
        assert "victim" in result.errors
        (finish,) = _events(result, QUERY_FINISH, "victim")
        assert finish.data["status"] == FAILED


class TestZeroSurvivorCompletion:
    def test_bus_ends_with_query_finish(self, db):
        session = db.session()
        session.submit(SQL, threads=10)
        result = session.run()
        assert result.bus.events[-1].kind == QUERY_FINISH

    def test_no_grant_after_last_finish(self, db):
        session = db.session()
        session.submit(SQL, threads=10)
        session.submit(SQL_CD, threads=10, at=0.01)
        result = session.run()
        last_finish = max(e.t for e in _events(result, QUERY_FINISH))
        assert all(e.t <= last_finish
                   for e in _events(result, QUERY_GRANT))
        assert result.bus.events[-1].kind == QUERY_FINISH


class TestCancellationParity:
    """A survivor arriving after the machine quiesced is bit-identical
    to a run where the victim was never submitted."""

    LATE = 5.0  # well past anything the cancelled victim could touch

    def _survivor_trace(self, db, with_victim: bool):
        session = db.session()
        if with_victim:
            compiled = db.compile(SQL)
            victim = session.submit_compiled(
                compiled, schedule=_lpt_schedule(db, compiled, 10),
                tag="victim")
            victim.cancel(at=0.1)
        compiled = db.compile(SQL_CD)
        survivor = session.submit_compiled(
            compiled, schedule=_lpt_schedule(db, compiled, 10),
            at=self.LATE, tag="survivor")
        session.run()
        execution = survivor.execution
        return {
            "response_time": execution.response_time,
            "startup_time": execution.startup_time,
            "rows": sorted(execution.result_rows),
            "operations": {
                name: (m.polls, m.secondary_accesses, m.dequeue_batches,
                       m.enqueues, m.busy_time, m.idle_time,
                       m.started_at, m.finished_at)
                for name, m in execution.operations.items()
            },
            "spans": [(s.thread_id, s.operation, s.kind, s.start, s.end)
                      for s in execution.trace.events],
            "events": [(e.kind, e.t, e.operation, e.thread_id)
                       for e in execution.obs.events],
        }

    def test_survivor_bit_identical_without_victim(self, db):
        with_victim = self._survivor_trace(db, with_victim=True)
        alone = self._survivor_trace(db, with_victim=False)
        assert with_victim == alone
