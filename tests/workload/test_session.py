"""The Session API: blessed surface, handles, and single-query parity.

The linchpin contract: one query through ``db.session()`` (and hence
through ``db.query()``, which wraps it) is **bit-identical** to the
dedicated single-query executor — same virtual response time, same
per-operation counters, same trace and observability streams.  The
workload layer must be free for the single-query path.
"""

import pytest

from repro import (
    DBS3,
    AdmissionError,
    ExecutionOptions,
    ObservabilityOptions,
    WorkloadError,
    WorkloadOptions,
    generate_wisconsin,
)
from repro.workload.session import DONE, PENDING

SQL = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"


@pytest.fixture
def db():
    db = DBS3(processors=72)
    db.create_table(generate_wisconsin("A", 2_000), "unique1", degree=20)
    db.create_table(generate_wisconsin("B", 200), "unique1", degree=20)
    return db


@pytest.fixture
def observed_db():
    options = ExecutionOptions(
        observability=ObservabilityOptions(trace=True, observe=True))
    db = DBS3(processors=72, options=options)
    db.create_table(generate_wisconsin("A", 2_000), "unique1", degree=20)
    db.create_table(generate_wisconsin("B", 200), "unique1", degree=20)
    return db


def _metric_trace(execution):
    return {
        "response_time": execution.response_time,
        "startup_time": execution.startup_time,
        "total_threads": execution.total_threads,
        "dilation": execution.dilation,
        "rows": sorted(execution.result_rows),
        "operations": {
            name: (m.polls, m.secondary_accesses, m.dequeue_batches,
                   m.enqueues, m.finished_at, m.started_at)
            for name, m in execution.operations.items()
        },
    }


class TestSingleQueryParity:
    def test_query_bit_identical_to_direct_executor(self, db):
        via_session = db.query(SQL, threads=10)
        compiled = db.compile(SQL)
        schedule = db.scheduler.schedule(compiled.plan, 10)
        direct = db.executor.execute(compiled.plan, schedule)
        assert _metric_trace(via_session.execution) == _metric_trace(direct)
        assert via_session.rows == compiled.shape_rows(direct.result_rows)

    def test_trace_and_obs_streams_identical(self, observed_db):
        db = observed_db
        via_session = db.query(SQL, threads=10).execution
        compiled = db.compile(SQL)
        schedule = db.scheduler.schedule(compiled.plan, 10)
        direct = db.executor.execute(compiled.plan, schedule)
        assert via_session.trace.events == direct.trace.events
        assert via_session.obs.events == direct.obs.events
        assert via_session.obs.counters == direct.obs.counters
        assert via_session.obs.series.keys() == direct.obs.series.keys()
        for name, series in via_session.obs.series.items():
            other = direct.obs.series[name]
            assert series.times == other.times
            assert series.values == other.values

    def test_execute_plan_routes_through_session(self, db):
        from repro.lera.plans import ideal_join_plan
        plan = ideal_join_plan(db.table("A"), db.table("B"),
                               "unique1", "unique1")
        schema = db.table("A").relation.schema.concat(
            db.table("B").relation.schema)
        result = db.execute_plan(plan, schema, threads=2)
        assert result.cardinality == 200


class TestHandles:
    def test_status_transitions(self, db):
        session = db.session()
        handle = session.submit(SQL, threads=8)
        assert handle.status == PENDING
        session.run()
        assert handle.status == DONE

    def test_result_before_completion_drives_the_workload(self, db):
        session = db.session()
        handle = session.submit(SQL, threads=8)
        # No explicit run(): asking for the result executes everything.
        assert handle.result().cardinality == 200
        assert session.result is not None
        assert handle.status == DONE

    def test_schedule_inspectable_before_run(self, db):
        session = db.session()
        handle = session.submit(SQL, threads=8)
        assert handle.schedule.of("join").threads >= 1

    def test_default_tags_count_up(self, db):
        session = db.session()
        assert session.submit(SQL, threads=4).tag == "q0"
        assert session.submit(SQL, threads=4).tag == "q1"

    def test_duplicate_tag_rejected(self, db):
        session = db.session()
        session.submit(SQL, threads=4, tag="mine")
        with pytest.raises(WorkloadError, match="duplicate"):
            session.submit(SQL, threads=4, tag="mine")

    def test_negative_arrival_rejected(self, db):
        session = db.session()
        with pytest.raises(WorkloadError, match="arrival"):
            session.submit(SQL, threads=4, at=-1.0)

    def test_submit_after_run_rejected(self, db):
        session = db.session()
        session.submit(SQL, threads=4)
        session.run()
        with pytest.raises(WorkloadError, match="already ran"):
            session.submit(SQL, threads=4)

    def test_run_is_idempotent(self, db):
        session = db.session()
        session.submit(SQL, threads=4)
        assert session.run() is session.run()

    def test_empty_session_runs_to_empty_result(self, db):
        result = db.session().run()
        assert result.executions == {}
        assert result.makespan == 0.0

    def test_impossible_footprint_fails_at_submit(self, db):
        session = db.session(WorkloadOptions(memory_limit_bytes=1))
        with pytest.raises(AdmissionError, match="never be admitted"):
            session.submit(SQL, threads=4)


class TestWorkloadOptionsValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(WorkloadError, match="max_concurrent"):
            WorkloadOptions(max_concurrent=0)

    def test_nonpositive_memory_limit_rejected(self):
        with pytest.raises(WorkloadError, match="memory_limit_bytes"):
            WorkloadOptions(memory_limit_bytes=0)

    def test_nonpositive_thread_budget_rejected(self):
        with pytest.raises(WorkloadError, match="thread_budget"):
            WorkloadOptions(thread_budget=0)
