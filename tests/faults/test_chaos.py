"""Chaos sweeps (``pytest -m chaos``; deselected from tier-1).

Thin pytest wrappers over :mod:`repro.bench.chaos`: each seed's full
invariant audit must pass, and the pooled engine must degrade strictly
less than the static binding at every slowdown factor above 1.  CI
runs these through ``make chaos``.
"""

import pytest

from repro.bench.chaos import (
    alert_sweep,
    degradation_curve,
    run_chaos,
    run_shared_chaos,
)

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_sweep_upholds_invariants(seed):
    report = run_chaos(seed)
    assert report.passed, "\n".join(report.violations)


def test_fault_counters_come_from_the_registry():
    """The harness reports fault/retry counters straight off the
    metrics registry, and they agree with the per-operation
    ``OperationMetrics`` tallies (``check_fault_accounting`` files a
    violation otherwise, so a passing report *is* the agreement)."""
    report = run_chaos(0, parity=False)
    assert report.passed, "\n".join(report.violations)
    assert set(report.fault_counters) == {
        "injected", "retries", "aborts", "memory_events"}
    assert report.fault_counters["injected"] >= (
        report.fault_counters["retries"] + report.fault_counters["aborts"])
    assert "faults   :" in report.render()


def test_shared_fold_survives_subscriber_cancellation():
    """Three folded subscribers, one cancelled mid-run: conservation
    holds per query, shared work is attributed at most once across the
    cohort, and the survivors' results match a private reference run
    exactly."""
    report = run_shared_chaos()
    assert report.passed, "\n".join(report.violations)


def test_pooled_degrades_less_than_static():
    points = degradation_curve()
    assert points[0].factor == 1.0
    for point in points[1:]:
        assert point.pooled < point.static, (
            f"pooled did not beat static at factor {point.factor}: "
            f"{point.pooled} vs {point.static}")


def test_alert_sweep_fires_on_faulted_cells_only():
    """The monitor stack watching the chaos grid: the uniform cell
    stays silent, every slowed cell fires a straggler (and trips the
    latency SLO), and a twin re-run fires byte-for-byte the same
    alerts — each cell's ``AlertCell.passed`` encodes all three."""
    cells = alert_sweep(factors=(1.0, 6.0))
    assert [cell.factor for cell in cells] == [1.0, 6.0]
    for cell in cells:
        assert cell.passed, "\n".join(cell.violations)
    uniform, slowed = cells
    assert len(uniform.alerts) == 0
    assert {"straggler", "latency_slo"} <= {
        a.rule for a in slowed.alerts}
    straggler = next(a for a in slowed.alerts if a.rule == "straggler")
    assert straggler.value > straggler.threshold
    assert "blame" in straggler.message
