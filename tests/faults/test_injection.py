"""Fault injection through the single-query executor.

Each fault type is exercised in isolation against the small join
database: failures retry and converge to the clean result, exhausted
retries abort with :class:`ExecutionFaultError`, latency/slowdown/
stall faults dilate virtual time monotonically, and — the load-bearing
invariant — an empty plan (or no plan) leaves the run bit-identical.
"""

import json

import pytest

from repro.engine.executor import ExecutionOptions, Executor
from repro.engine.metrics import STATUS_DONE
from repro.errors import ExecutionFaultError, FaultError
from repro.faults import (
    ActivationFaults,
    DiskFault,
    FaultPlan,
    MemoryPressure,
    SlowdownWindow,
    StallWindow,
)
from repro.faults.injector import io_faults
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler
from repro.storage.io import relation_to_csv

THREADS = 8


def _run(join_db, faults=None, machine=None, pipelined=True, observe=False):
    machine = machine or Machine.uniform(processors=16)
    builder = assoc_join_plan if pipelined else ideal_join_plan
    plan = builder(join_db.entry_a, join_db.entry_b, "key", "key")
    schedule = AdaptiveScheduler(machine).schedule(plan, THREADS)
    from repro.engine.executor import ObservabilityOptions
    options = ExecutionOptions(
        faults=faults,
        observability=ObservabilityOptions(trace=observe, observe=observe))
    return Executor(machine, options).execute(plan, schedule)


def _metric_trace(execution):
    return {
        "response_time": execution.response_time,
        "rows": sorted(execution.result_rows),
        "operations": {
            name: (m.polls, m.secondary_accesses, m.dequeue_batches,
                   m.enqueues, m.busy_time, m.idle_time, m.finished_at)
            for name, m in execution.operations.items()
        },
    }


class TestFaultFreeParity:
    def test_empty_plan_bit_identical_to_no_plan(self, join_db):
        plain = _run(join_db, faults=None)
        empty = _run(join_db, faults=FaultPlan(seed=3))
        assert _metric_trace(plain) == _metric_trace(empty)

    def test_zero_rate_specs_leave_counters_clean(self, join_db):
        faults = FaultPlan(activations=(ActivationFaults(rate=0.0),))
        execution = _run(join_db, faults=faults)
        for op in execution.operations.values():
            assert op.faults_injected == 0
            assert op.fault_retries == 0
            assert op.fault_aborts == 0


class TestRetries:
    def test_retries_converge_to_clean_result(self, join_db):
        clean = _run(join_db)
        faults = FaultPlan(seed=1, activations=(
            ActivationFaults(operation="join", rate=0.3, max_retries=50),))
        faulted = _run(join_db, faults=faults)
        assert faulted.status == STATUS_DONE
        assert sorted(faulted.result_rows) == sorted(clean.result_rows)
        assert faulted.response_time > clean.response_time
        join = faulted.operations["join"]
        assert join.faults_injected > 0
        assert join.fault_retries == join.faults_injected
        assert join.fault_aborts == 0

    def test_conservation_under_retries(self, join_db):
        faults = FaultPlan(seed=1, activations=(
            ActivationFaults(operation="join", rate=0.3, max_retries=50),))
        execution = _run(join_db, faults=faults)
        for op in execution.operations.values():
            assert sum(op.queue_activations) == (
                op.activations + op.fault_retries + op.fault_aborts
                + op.discarded)

    def test_exhausted_retries_abort(self, join_db):
        faults = FaultPlan(activations=(
            ActivationFaults(operation="join", rate=1.0, max_retries=2),))
        with pytest.raises(ExecutionFaultError, match="join"):
            _run(join_db, faults=faults)


class TestDiskFaults:
    def test_extra_latency_dilates_monotonically(self, join_db):
        responses = []
        for extra in (0.0, 0.001, 0.01):
            faults = None if extra == 0.0 else FaultPlan(
                disk=(DiskFault("join", extra_latency=extra),))
            responses.append(
                _run(join_db, faults=faults, pipelined=False).response_time)
        assert responses[0] < responses[1] < responses[2]

    def test_disk_errors_retry_to_clean_result(self, join_db):
        clean = _run(join_db, pipelined=False)
        faults = FaultPlan(seed=2, disk=(
            DiskFault("join", error_rate=0.2, max_retries=50),))
        faulted = _run(join_db, faults=faults, pipelined=False)
        assert sorted(faulted.result_rows) == sorted(clean.result_rows)
        assert faulted.operations["join"].faults_injected > 0


class TestCpuFaults:
    def test_slowdown_dilates_response(self, join_db):
        clean = _run(join_db)
        faults = FaultPlan(slowdowns=(
            SlowdownWindow(0.0, float("inf"), 4.0, operation="join"),))
        slowed = _run(join_db, faults=faults)
        assert slowed.response_time > clean.response_time
        assert sorted(slowed.result_rows) == sorted(clean.result_rows)

    def test_stall_parks_threads_and_charges_stalled_time(self, join_db):
        clean = _run(join_db)
        # The window must cover the join's active region: thread
        # startup alone takes ~0.12 virtual seconds on this workload.
        faults = FaultPlan(stalls=(
            StallWindow(0.15, 0.25, operation="join"),))
        stalled = _run(join_db, faults=faults)
        assert stalled.response_time > clean.response_time
        assert stalled.operations["join"].stalled_time > 0.0
        assert sorted(stalled.result_rows) == sorted(clean.result_rows)


class TestMemoryPressure:
    def test_shrinking_allcache_budget_raises_penalty(self, join_db):
        clean = _run(join_db, machine=Machine.ksr1(processors=16))
        faults = FaultPlan(memory=(MemoryPressure(at=0.0, factor=0.4),))
        pressured = _run(join_db, faults=faults,
                         machine=Machine.ksr1(processors=16))
        assert sorted(pressured.result_rows) == sorted(clean.result_rows)
        penalty = sum(op.memory_penalty
                      for op in pressured.operations.values())
        baseline = sum(op.memory_penalty
                       for op in clean.operations.values())
        assert penalty >= baseline
        assert pressured.response_time >= clean.response_time


class TestIoFaults:
    def test_matching_path_raises(self, tmp_path, small_relation):
        plan = FaultPlan(io_error_paths=("flaky",))
        with io_faults(plan):
            with pytest.raises(FaultError, match="injected I/O fault"):
                relation_to_csv(small_relation, tmp_path / "flaky.csv")

    def test_non_matching_path_unaffected(self, tmp_path, small_relation):
        plan = FaultPlan(io_error_paths=("flaky",))
        with io_faults(plan):
            relation_to_csv(small_relation, tmp_path / "steady.csv")
        assert (tmp_path / "steady.csv").exists()

    def test_hook_restored_on_exit(self, tmp_path, small_relation):
        with io_faults(FaultPlan(io_error_paths=("flaky",))):
            pass
        relation_to_csv(small_relation, tmp_path / "flaky.csv")


class TestSeededDeterminism:
    def _records(self, join_db, seed):
        faults = FaultPlan(seed=seed, activations=(
            ActivationFaults(operation="join", rate=0.2, max_retries=50),))
        execution = _run(join_db, faults=faults, observe=True)
        from repro.obs.export import jsonl_records
        return [json.dumps(record) for record in jsonl_records(execution)]

    def test_same_seed_identical_event_log(self, join_db):
        assert self._records(join_db, 5) == self._records(join_db, 5)

    def test_different_seed_different_event_log(self, join_db):
        assert self._records(join_db, 5) != self._records(join_db, 6)
