"""FaultPlan validation and seeded generation.

The plan layer is pure data: these tests pin its validation errors and
the determinism contract of :meth:`FaultPlan.generate` — the chaos
sweep's replayability rests on same-seed-same-plan.
"""

import pytest

from repro.errors import FaultError
from repro.faults import (
    ActivationFaults,
    DiskFault,
    FaultPlan,
    MemoryPressure,
    SlowdownWindow,
    StallWindow,
)


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(FaultError, match="empty"):
            SlowdownWindow(1.0, 1.0, 2.0)

    def test_negative_window_rejected(self):
        with pytest.raises(FaultError, match="empty or negative"):
            StallWindow(-0.5, 1.0)

    def test_speedup_factor_rejected(self):
        with pytest.raises(FaultError, match="factor must be >= 1"):
            SlowdownWindow(0.0, 1.0, 0.5)

    def test_disk_error_rate_out_of_range(self):
        with pytest.raises(FaultError, match="error_rate"):
            DiskFault("scan_a", error_rate=1.5)

    def test_disk_negative_latency_rejected(self):
        with pytest.raises(FaultError, match="extra_latency"):
            DiskFault("scan_a", extra_latency=-0.1)

    def test_memory_pressure_factor_bounds(self):
        with pytest.raises(FaultError, match="factor"):
            MemoryPressure(at=0.1, factor=1.0)
        with pytest.raises(FaultError, match="factor"):
            MemoryPressure(at=0.1, factor=0.0)

    def test_activation_rate_out_of_range(self):
        with pytest.raises(FaultError, match="rate"):
            ActivationFaults(rate=-0.1)

    def test_retry_parameters_must_be_positive(self):
        with pytest.raises(FaultError, match="retry parameters"):
            ActivationFaults(rate=0.1, backoff=0.0)

    def test_plan_fields_must_be_tuples(self):
        with pytest.raises(FaultError, match="tuple"):
            FaultPlan(slowdowns=[SlowdownWindow(0.0, 1.0, 2.0)])


class TestPlanShape:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert "(empty)" in FaultPlan().describe()

    def test_nonempty_plan_is_not_empty(self):
        plan = FaultPlan(activations=(ActivationFaults(rate=0.1),))
        assert not plan.is_empty
        assert "ActivationFaults" in plan.describe()


class TestGenerate:
    OPS = ("scan_a", "transmit", "join")

    def test_same_seed_same_plan(self):
        assert (FaultPlan.generate(7, self.OPS)
                == FaultPlan.generate(7, self.OPS))

    def test_different_seeds_differ(self):
        plans = {FaultPlan.generate(seed, self.OPS) for seed in range(4)}
        assert len(plans) == 4

    def test_generated_plan_targets_known_operations(self):
        plan = FaultPlan.generate(0, self.OPS)
        assert not plan.is_empty
        for spec in plan.activations:
            assert spec.operation in self.OPS

    def test_generate_needs_operations(self):
        with pytest.raises(FaultError, match="at least one operation"):
            FaultPlan.generate(0, ())
