"""Scheduler steps 1-3: thread count, chain split, operator split."""

import pytest

from repro.bench.workloads import make_join_database
from repro.errors import SchedulerError
from repro.lera.plans import assoc_join_plan, ideal_join_plan, materialized
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.scheduler.allocation import (
    allocate_to_chains,
    allocate_to_operations,
    choose_thread_count,
    estimated_response_time,
)
from repro.scheduler.complexity import chain_complexity, query_complexity


@pytest.fixture
def assoc_plan(join_db):
    return assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")


class TestStepOne:
    def test_low_complexity_gets_few_threads(self):
        machine = Machine.uniform(processors=70)
        assert choose_thread_count(0.01, machine) <= 2

    def test_high_complexity_saturates_processors(self):
        machine = Machine.uniform(processors=70)
        assert choose_thread_count(10_000.0, machine) >= 69

    def test_monotone_in_complexity(self):
        machine = Machine.uniform(processors=70)
        counts = [choose_thread_count(w, machine)
                  for w in (0.1, 1.0, 10.0, 100.0)]
        assert counts == sorted(counts)

    def test_max_threads_cap(self):
        machine = Machine.uniform(processors=70)
        assert choose_thread_count(10_000.0, machine, max_threads=8) <= 8

    def test_multi_user_factor_reduces(self):
        machine = Machine.uniform(processors=70)
        single = choose_thread_count(1000.0, machine)
        shared = choose_thread_count(1000.0, machine, multi_user_factor=0.5)
        assert shared <= single
        assert shared >= 1

    def test_rejects_bad_inputs(self):
        machine = Machine.uniform()
        with pytest.raises(SchedulerError):
            choose_thread_count(-1.0, machine)
        with pytest.raises(SchedulerError):
            choose_thread_count(1.0, machine, multi_user_factor=0.0)

    def test_estimated_response_has_tradeoff(self):
        """More threads help big work, hurt tiny work (start-up)."""
        machine = Machine.uniform(processors=70)
        assert (estimated_response_time(100.0, 50, machine)
                < estimated_response_time(100.0, 1, machine))
        assert (estimated_response_time(0.001, 50, machine)
                > estimated_response_time(0.001, 1, machine))


class TestStepTwo:
    def test_single_chain_gets_all(self, assoc_plan):
        allocation = allocate_to_chains(assoc_plan, 10, DEFAULT_COSTS)
        assert list(allocation.values()) == [10]

    def test_dependent_chains_split_budget(self, join_db, catalog,
                                           small_relation):
        from repro.lera.plans import selection_plan
        from repro.lera.predicates import TRUE
        from repro.storage.partitioning import PartitioningSpec
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre")
        consumer = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key")
        merged = materialized(producer, consumer, "pre", "join")
        allocation = allocate_to_chains(merged, 12, DEFAULT_COSTS)
        chains = merged.chains()
        by_head = {c.head.name: c.chain_id for c in chains}
        # The root (join) chain gets the full budget; its dependency
        # (the filter chain) then receives the root's budget in turn
        # (single child == whole allocation).
        assert allocation[by_head["join"]] == 12
        assert allocation[by_head["pre"]] == 12

    def test_sibling_chains_split_proportionally(self, catalog):
        """Two producer chains with 3:1 complexities split the parent's
        threads roughly 3:1 (the paper's T_i/N_i equations)."""
        from repro.lera.graph import MATERIALIZED, LeraGraph
        from repro.lera.operators import ScanFilterSpec
        from repro.lera.predicates import TRUE
        from repro.storage.fragment import Fragment
        from repro.storage.schema import Schema
        schema = Schema.of_ints("key")
        big = [Fragment("Big", i, schema, [(j,) for j in range(300)])
               for i in range(2)]
        small = [Fragment("Small", i, schema, [(j,) for j in range(100)])
                 for i in range(2)]
        sink = [Fragment("Sink", i, schema, [(j,) for j in range(10)])
                for i in range(2)]
        graph = LeraGraph()
        graph.add_node("big", ScanFilterSpec(big, TRUE, schema))
        graph.add_node("small", ScanFilterSpec(small, TRUE, schema))
        graph.add_node("sink", ScanFilterSpec(sink, TRUE, schema))
        graph.add_edge("big", "sink", MATERIALIZED)
        graph.add_edge("small", "sink", MATERIALIZED)
        allocation = allocate_to_chains(graph, 8, DEFAULT_COSTS)
        chains = graph.chains()
        by_head = {c.head.name: c.chain_id for c in chains}
        assert allocation[by_head["sink"]] == 8
        assert allocation[by_head["big"]] == 6
        assert allocation[by_head["small"]] == 2

    def test_rejects_zero_threads(self, assoc_plan):
        with pytest.raises(SchedulerError):
            allocate_to_chains(assoc_plan, 0, DEFAULT_COSTS)


class TestStepThree:
    def test_split_proportional_to_complexity(self, assoc_plan):
        chain = assoc_plan.chains()[0]
        allocation = allocate_to_operations(chain, 10, DEFAULT_COSTS)
        assert sum(allocation.values()) == 10
        # the pipelined join dominates the transmit in estimated work
        assert allocation["join"] > allocation["transmit"]

    def test_every_operation_gets_a_thread(self, assoc_plan):
        chain = assoc_plan.chains()[0]
        allocation = allocate_to_operations(chain, 1, DEFAULT_COSTS)
        assert all(threads >= 1 for threads in allocation.values())

    def test_exact_ratio_formula(self, assoc_plan):
        """NbThreads(Op) ~= chain threads * complexity ratio."""
        chain = assoc_plan.chains()[0]
        total = chain_complexity(chain, DEFAULT_COSTS)
        allocation = allocate_to_operations(chain, 20, DEFAULT_COSTS)
        for node in chain.nodes:
            expected = 20 * node.spec.total_complexity(DEFAULT_COSTS) / total
            assert abs(allocation[node.name] - expected) <= 1.0

    def test_query_complexity_positive(self, assoc_plan):
        assert query_complexity(assoc_plan, DEFAULT_COSTS) > 0
