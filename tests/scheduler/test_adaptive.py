"""Adaptive scheduler end-to-end, strategy selection, baselines."""

import pytest

from repro.bench.workloads import make_join_database
from repro.engine.strategies import LPT, RANDOM
from repro.lera.plans import assoc_join_plan, ideal_join_plan
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.machine import Machine
from repro.scheduler.adaptive import AdaptiveScheduler, StaticScheduler
from repro.scheduler.strategy_selection import instance_skew, select_strategy


@pytest.fixture
def machine():
    return Machine.uniform(processors=16)


class TestStrategySelection:
    def test_uniform_triggered_gets_random(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        assert select_strategy(plan.node("join"), DEFAULT_COSTS) == RANDOM

    def test_skewed_triggered_gets_lpt(self, skewed_join_db, machine):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        assert select_strategy(plan.node("join"), DEFAULT_COSTS) == LPT

    def test_pipelined_always_random(self, skewed_join_db):
        plan = assoc_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        assert select_strategy(plan.node("join"), DEFAULT_COSTS) == RANDOM

    def test_instance_skew_values(self, join_db, skewed_join_db):
        uniform_plan = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                       "key", "key")
        skewed_plan = ideal_join_plan(skewed_join_db.entry_a,
                                      skewed_join_db.entry_b, "key", "key")
        assert instance_skew(uniform_plan.node("join"), DEFAULT_COSTS) < 1.3
        assert instance_skew(skewed_plan.node("join"), DEFAULT_COSTS) > 2.0

    def test_threshold_configurable(self, skewed_join_db):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        node = plan.node("join")
        assert select_strategy(node, DEFAULT_COSTS, skew_threshold=100.0) == RANDOM


class TestAdaptiveScheduler:
    def test_explicit_threads_distributed(self, join_db, machine):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan, total_threads=8)
        total = sum(s.threads for s in schedule.operations.values())
        assert total == 8

    def test_auto_threads_from_complexity(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan)
        assert schedule.of("join").threads >= 1

    def test_bigger_query_gets_more_threads(self, machine):
        small = make_join_database(200, 20, degree=10, theta=0.0)
        large = make_join_database(20_000, 2000, degree=10, theta=0.0)
        plan_s = ideal_join_plan(small.entry_a, small.entry_b, "key", "key")
        plan_l = ideal_join_plan(large.entry_a, large.entry_b, "key", "key")
        scheduler = AdaptiveScheduler(machine)
        threads_s = scheduler.schedule(plan_s).of("join").threads
        threads_l = scheduler.schedule(plan_l).of("join").threads
        assert threads_l >= threads_s

    def test_skew_triggers_lpt(self, skewed_join_db, machine):
        plan = ideal_join_plan(skewed_join_db.entry_a, skewed_join_db.entry_b,
                               "key", "key")
        schedule = AdaptiveScheduler(machine).schedule(plan, total_threads=4)
        assert schedule.of("join").strategy == LPT

    def test_parallelism_decoupled_from_partitioning(self, machine):
        """The paper's headline property: the same 50-fragment database
        can run with any thread count."""
        database = make_join_database(500, 50, degree=50, theta=0.0)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        for threads in (1, 3, 7, 50):
            schedule = AdaptiveScheduler(machine).schedule(plan, threads)
            assert schedule.of("join").threads == threads


class TestStaticScheduler:
    def test_one_thread_per_instance(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = StaticScheduler(machine).schedule(plan)
        assert schedule.of("join").threads == join_db.degree

    def test_secondary_disabled(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = StaticScheduler(machine).schedule(plan)
        assert schedule.of("join").allow_secondary is False

    def test_total_threads_ignored(self, join_db, machine):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        schedule = StaticScheduler(machine).schedule(plan, total_threads=3)
        assert schedule.of("join").threads == join_db.degree
