"""The paper's Figure 5 worked example: five subqueries, step-2 equations.

Section 3 sets up the tree ``Sq5 <- {Sq3, Sq4}``, ``Sq3 <- {Sq1, Sq2}``
and derives::

    N5 = N
    N3 + N4 = N5        (T1+T2+T3)/N3 = T4/N4
    N1 + N2 = N3        T1/N1 = T2/N2

This test builds exactly that chain DAG with controlled complexities
and checks the scheduler's allocation solves the equation system (up
to integer rounding).
"""

import pytest

from repro.lera.graph import MATERIALIZED, LeraGraph
from repro.lera.operators import ScanFilterSpec
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.scheduler.allocation import allocate_to_chains
from repro.storage.fragment import Fragment
from repro.storage.schema import Schema

SCHEMA = Schema.of_ints("key")


def _chain_node(name: str, cardinality: int) -> ScanFilterSpec:
    """A single-operator chain whose complexity tracks *cardinality*."""
    fragments = [Fragment(name, i, SCHEMA,
                          [(j,) for j in range(cardinality // 2)])
                 for i in range(2)]
    return ScanFilterSpec(fragments, TRUE, SCHEMA)


@pytest.fixture
def figure5():
    """The Figure 5 DAG with T1..T5 proportional to 100/300/200/600/400."""
    graph = LeraGraph()
    cardinalities = {"Sq1": 100, "Sq2": 300, "Sq3": 200, "Sq4": 600,
                     "Sq5": 400}
    for name, cardinality in cardinalities.items():
        graph.add_node(name, _chain_node(name, cardinality))
    graph.add_edge("Sq3", "Sq5", MATERIALIZED)
    graph.add_edge("Sq4", "Sq5", MATERIALIZED)
    graph.add_edge("Sq1", "Sq3", MATERIALIZED)
    graph.add_edge("Sq2", "Sq3", MATERIALIZED)
    graph.validate()
    return graph


def _allocation_by_name(graph, total):
    chains = graph.chains()
    by_head = {chain.head.name: chain.chain_id for chain in chains}
    allocation = allocate_to_chains(graph, total, DEFAULT_COSTS)
    return {name: allocation[chain_id] for name, chain_id in by_head.items()}


class TestFigure5Equations:
    def test_root_gets_full_budget(self, figure5):
        allocation = _allocation_by_name(figure5, 12)
        assert allocation["Sq5"] == 12

    def test_n3_plus_n4_equals_n5(self, figure5):
        allocation = _allocation_by_name(figure5, 12)
        assert allocation["Sq3"] + allocation["Sq4"] == allocation["Sq5"]

    def test_n1_plus_n2_equals_n3(self, figure5):
        allocation = _allocation_by_name(figure5, 12)
        assert allocation["Sq1"] + allocation["Sq2"] == allocation["Sq3"]

    def test_sq3_sq4_proportionality(self, figure5):
        """(T1+T2+T3)/N3 = T4/N4: subtree(Sq3) = 100+300+200 = 600,
        subtree(Sq4) = 600 — equal shares."""
        allocation = _allocation_by_name(figure5, 12)
        assert allocation["Sq3"] == allocation["Sq4"] == 6

    def test_sq1_sq2_proportionality(self, figure5):
        """T1/N1 = T2/N2 with T1:T2 = 1:3 over N3=6 -> N1=1.5 -> 1 or 2."""
        allocation = _allocation_by_name(figure5, 12)
        assert allocation["Sq1"] in (1, 2)
        assert allocation["Sq2"] == 6 - allocation["Sq1"]
        assert allocation["Sq2"] > allocation["Sq1"]

    def test_waves_follow_dependencies(self, figure5):
        waves = figure5.chain_waves()
        order = {chain.head.name: level
                 for level, wave in enumerate(waves) for chain in wave}
        assert order["Sq1"] == order["Sq2"] == 0
        assert order["Sq3"] == 1
        assert order["Sq4"] == 0     # no dependencies of its own
        assert order["Sq5"] == 2

    def test_end_to_end_execution(self, figure5):
        """The whole Figure 5 plan executes under the derived schedule."""
        from repro.engine.executor import Executor
        from repro.machine.machine import Machine
        from repro.scheduler.adaptive import AdaptiveScheduler
        machine = Machine.uniform(processors=16)
        schedule = AdaptiveScheduler(machine).schedule(figure5, 12)
        execution = Executor(machine).execute(figure5, schedule)
        total_rows = sum(card for card in (100, 300, 200, 600, 400))
        assert execution.result_cardinality == total_rows
