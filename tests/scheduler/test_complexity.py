"""Complexity estimation used by the scheduler."""

import pytest

from repro.bench.workloads import make_join_database
from repro.lera.plans import assoc_join_plan, ideal_join_plan, materialized, selection_plan
from repro.lera.predicates import TRUE
from repro.machine.costs import DEFAULT_COSTS
from repro.scheduler.complexity import (
    chain_complexity,
    estimate_chains,
    operator_complexity,
    query_complexity,
)
from repro.storage.partitioning import PartitioningSpec


class TestComplexity:
    def test_operator_complexity_matches_spec(self, join_db):
        plan = ideal_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        spec = plan.node("join").spec
        assert operator_complexity(spec, DEFAULT_COSTS) == pytest.approx(
            spec.total_complexity(DEFAULT_COSTS))

    def test_chain_complexity_sums_nodes(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        chain = plan.chains()[0]
        total = chain_complexity(chain, DEFAULT_COSTS)
        parts = sum(operator_complexity(node.spec, DEFAULT_COSTS)
                    for node in chain.nodes)
        assert total == pytest.approx(parts)

    def test_query_complexity_covers_all_chains(self, join_db, catalog,
                                                small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre")
        consumer = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key")
        merged = materialized(producer, consumer, "pre", "join")
        total = query_complexity(merged, DEFAULT_COSTS)
        chains = merged.chains()
        assert total == pytest.approx(sum(
            chain_complexity(c, DEFAULT_COSTS) for c in chains))

    def test_larger_database_larger_complexity(self):
        small = make_join_database(200, 20, degree=10, theta=0.0)
        large = make_join_database(2000, 200, degree=10, theta=0.0)
        plan_s = ideal_join_plan(small.entry_a, small.entry_b, "key", "key")
        plan_l = ideal_join_plan(large.entry_a, large.entry_b, "key", "key")
        assert (query_complexity(plan_l, DEFAULT_COSTS)
                > query_complexity(plan_s, DEFAULT_COSTS))


class TestSubtreeEstimates:
    def test_subtree_adds_dependencies(self, join_db, catalog,
                                       small_relation):
        entry = catalog.register(small_relation, PartitioningSpec.on("key", 4))
        producer = selection_plan(entry, TRUE, node_name="pre")
        consumer = ideal_join_plan(join_db.entry_a, join_db.entry_b,
                                   "key", "key")
        merged = materialized(producer, consumer, "pre", "join")
        estimates = estimate_chains(merged, DEFAULT_COSTS)
        chains = merged.chains()
        by_head = {c.head.name: c.chain_id for c in chains}
        pre = estimates[by_head["pre"]]
        join = estimates[by_head["join"]]
        assert pre.subtree == pytest.approx(pre.own)
        assert join.subtree == pytest.approx(join.own + pre.own)

    def test_independent_chain_subtree_is_own(self, join_db):
        plan = assoc_join_plan(join_db.entry_a, join_db.entry_b, "key", "key")
        estimates = estimate_chains(plan, DEFAULT_COSTS)
        only = next(iter(estimates.values()))
        assert only.subtree == pytest.approx(only.own)
