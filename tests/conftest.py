"""Shared fixtures: small relations, catalogs and databases.

Sizes are kept small (hundreds to a few thousand tuples) so the whole
suite runs in seconds; the full paper-scale runs live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_join_database
from repro.machine.machine import Machine
from repro.storage.catalog import Catalog
from repro.storage.partitioning import PartitioningSpec
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.wisconsin import generate_wisconsin


@pytest.fixture
def small_schema() -> Schema:
    return Schema.of_ints("key", "payload")


@pytest.fixture
def small_relation(small_schema) -> Relation:
    rows = [(i, i * 10) for i in range(100)]
    return Relation("R", small_schema, rows)


@pytest.fixture
def wisconsin_1k() -> Relation:
    return generate_wisconsin("W", 1000, seed=42)


@pytest.fixture
def catalog() -> Catalog:
    return Catalog(disk_count=4)


@pytest.fixture
def join_db():
    """A small, unskewed join database (A=2000, B=200, degree=20)."""
    return make_join_database(2000, 200, degree=20, theta=0.0)


@pytest.fixture
def skewed_join_db():
    """A small, highly skewed join database (Zipf = 1)."""
    return make_join_database(2000, 200, degree=20, theta=1.0)


@pytest.fixture
def uniform_machine() -> Machine:
    return Machine.uniform(processors=16)


@pytest.fixture
def ksr1_machine() -> Machine:
    return Machine.ksr1(processors=16)
