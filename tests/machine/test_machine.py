"""Machine models: dilation and memory integration."""

import pytest

from repro.errors import MachineError
from repro.machine.machine import KSR1_PROCESSORS, Machine


class TestConstruction:
    def test_defaults(self):
        machine = Machine()
        assert machine.processors == KSR1_PROCESSORS
        assert machine.directory is None

    def test_ksr1_models_memory(self):
        machine = Machine.ksr1()
        assert machine.models_memory
        assert machine.directory is not None

    def test_uniform_does_not(self):
        machine = Machine.uniform()
        assert not machine.models_memory

    def test_rejects_zero_processors(self):
        with pytest.raises(MachineError):
            Machine(processors=0)


class TestDilation:
    def test_no_dilation_at_or_under_processors(self):
        machine = Machine.uniform(processors=70)
        assert machine.dilation(1) == 1.0
        assert machine.dilation(70) == 1.0

    def test_dilation_grows_past_processors(self):
        machine = Machine.uniform(processors=70)
        assert machine.dilation(71) > 1.0
        assert machine.dilation(140) > machine.dilation(100)

    def test_dilation_includes_switch_tax(self):
        machine = Machine.uniform(processors=10)
        ratio = 20 / 10
        expected = ratio * (1 + machine.costs.context_switch_tax * (ratio - 1))
        assert machine.dilation(20) == pytest.approx(expected)


class TestMemoryIntegration:
    def test_uniform_memory_access_free(self):
        machine = Machine.uniform()
        assert machine.memory_access(1, "seg", 1000) == 0.0

    def test_uniform_place_is_noop(self):
        machine = Machine.uniform()
        machine.place_segment("seg", 1000, owner=1)  # must not raise

    def test_ksr1_remote_then_local(self):
        machine = Machine.ksr1(processors=4)
        machine.place_segment("seg", 4096, owner=-1)
        first = machine.memory_access(0, "seg")
        second = machine.memory_access(0, "seg")
        assert first > 0.0
        assert second == 0.0

    def test_ksr1_warm_placement_free(self):
        machine = Machine.ksr1(processors=4)
        machine.place_segment("seg", 4096, owner=2)
        assert machine.memory_access(2, "seg") == 0.0
