"""Allcache local caches and the migration directory."""

import pytest

from repro.errors import MachineError
from repro.machine.cache import REMOTE_HOME, AllcacheDirectory, LocalCache
from repro.machine.costs import DEFAULT_COSTS


class TestLocalCache:
    def test_touch_admits(self):
        cache = LocalCache(0, 1000)
        cache.touch("a", 100)
        assert "a" in cache
        assert cache.used_bytes == 100

    def test_touch_existing_is_idempotent(self):
        cache = LocalCache(0, 1000)
        cache.touch("a", 100)
        cache.touch("a", 100)
        assert cache.used_bytes == 100

    def test_lru_eviction(self):
        cache = LocalCache(0, 250)
        cache.touch("a", 100)
        cache.touch("b", 100)
        evicted = cache.touch("c", 100)   # over capacity: evict oldest
        assert evicted == ["a"]
        assert "a" not in cache
        assert "c" in cache

    def test_touch_refreshes_recency(self):
        cache = LocalCache(0, 250)
        cache.touch("a", 100)
        cache.touch("b", 100)
        cache.touch("a", 100)             # a becomes most recent
        evicted = cache.touch("c", 100)
        assert evicted == ["b"]

    def test_oversized_segment_admitted_alone(self):
        cache = LocalCache(0, 100)
        evicted = cache.touch("huge", 500)
        assert evicted == []
        assert "huge" in cache

    def test_drop(self):
        cache = LocalCache(0, 1000)
        cache.touch("a", 100)
        cache.drop("a")
        assert "a" not in cache
        assert cache.used_bytes == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(MachineError):
            LocalCache(0, -1)


class TestAllcacheDirectory:
    def _directory(self, capacity=10_000):
        return AllcacheDirectory(DEFAULT_COSTS, capacity)

    def test_local_hit_is_free(self):
        directory = self._directory()
        directory.place("seg", 256, owner=1)
        assert directory.access(1, "seg") == 0.0
        assert directory.cache_of(1).stats.local_hits == 1

    def test_remote_miss_charges_lines(self):
        directory = self._directory()
        directory.place("seg", 256, owner=1)
        penalty = directory.access(2, "seg")
        lines = DEFAULT_COSTS.lines(256)
        assert penalty == pytest.approx(
            lines * DEFAULT_COSTS.remote_penalty_per_line())

    def test_migration_makes_later_access_local(self):
        directory = self._directory()
        directory.place("seg", 256, owner=1)
        directory.access(2, "seg")            # migrates to 2
        assert directory.access(2, "seg") == 0.0
        # and owner 1 lost it
        assert directory.access(1, "seg") > 0.0

    def test_remote_home_first_touch_pays(self):
        directory = self._directory()
        directory.place("seg", 256, owner=REMOTE_HOME)
        assert directory.access(3, "seg") > 0.0
        assert directory.access(3, "seg") == 0.0

    def test_unplaced_access_with_size_works(self):
        directory = self._directory()
        assert directory.access(1, "new", size_bytes=128) > 0.0

    def test_unplaced_access_without_size_raises(self):
        directory = self._directory()
        with pytest.raises(MachineError):
            directory.access(1, "mystery")

    def test_eviction_falls_back_to_remote(self):
        directory = self._directory(capacity=300)
        directory.access(1, "a", 200)
        directory.access(1, "b", 200)     # evicts a from cache 1
        assert directory.home["a"] == REMOTE_HOME
        assert directory.access(1, "a", 200) > 0.0

    def test_total_stats_aggregates(self):
        directory = self._directory()
        directory.access(1, "a", 100)
        directory.access(2, "a", 100)
        stats = directory.total_stats()
        assert stats.remote_misses == 2
        assert stats.lines_shipped >= 2
