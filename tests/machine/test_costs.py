"""Cost-model arithmetic and calibration invariants."""

import math

import pytest

from repro.errors import MachineError
from repro.machine.costs import DEFAULT_COSTS, CostModel


class TestValidation:
    def test_default_is_valid(self):
        assert DEFAULT_COSTS.tuple_pair > 0

    def test_negative_constant_rejected(self):
        with pytest.raises(MachineError):
            CostModel(tuple_pair=-1.0)

    def test_zero_line_bytes_rejected(self):
        with pytest.raises(MachineError):
            CostModel(line_bytes=0)


class TestDerivedCosts:
    def test_remote_penalty(self):
        assert DEFAULT_COSTS.remote_penalty_per_line() == pytest.approx(
            DEFAULT_COSTS.remote_line - DEFAULT_COSTS.local_line)

    def test_remote_is_about_six_times_local(self):
        """Section 5.2: remote access is ~6x a local access."""
        ratio = DEFAULT_COSTS.remote_line / DEFAULT_COSTS.local_line
        assert 5 <= ratio <= 7

    def test_lines_rounds_up(self):
        assert DEFAULT_COSTS.lines(1) == 1
        assert DEFAULT_COSTS.lines(128) == 1
        assert DEFAULT_COSTS.lines(129) == 2

    def test_lines_minimum_one(self):
        assert DEFAULT_COSTS.lines(0) == 1

    def test_nested_loop_cost(self):
        cost = DEFAULT_COSTS.nested_loop_cost(10, 20, 3)
        expected = 200 * DEFAULT_COSTS.tuple_pair + 3 * DEFAULT_COSTS.result_tuple
        assert cost == pytest.approx(expected)

    def test_index_build_nlogn(self):
        cost = DEFAULT_COSTS.index_build_cost(1024)
        assert cost == pytest.approx(1024 * 10 * DEFAULT_COSTS.index_compare)

    def test_index_build_tiny(self):
        assert DEFAULT_COSTS.index_build_cost(0) == 0.0
        assert DEFAULT_COSTS.index_build_cost(1) == DEFAULT_COSTS.index_compare

    def test_index_probe(self):
        cost = DEFAULT_COSTS.index_probe_cost(1024, 2)
        expected = 10 * DEFAULT_COSTS.index_compare + 2 * DEFAULT_COSTS.result_tuple
        assert cost == pytest.approx(expected)


class TestCalibration:
    def test_sequential_ideal_join_near_paper(self):
        """Figure 15's Tseq ~= 956 s: 200K x 20K nested loop over 200
        fragments is 20M tuple pairs."""
        pairs = 200 * (1000 * 100)
        sequential = pairs * DEFAULT_COSTS.tuple_pair
        assert math.isclose(sequential, 956, rel_tol=0.15)

    def test_assoc_join_extra_near_paper(self):
        """Figure 14's Tseq ~= 1048 s adds ~92 s of transmit/pipeline
        handling for 20K tuples."""
        extra = 20_000 * (DEFAULT_COSTS.transmit_tuple
                          + DEFAULT_COSTS.pipelined_activation)
        assert math.isclose(extra, 92, rel_tol=0.15)

    def test_queue_creation_slopes_near_paper(self):
        """Figure 16: ~0.45 ms/degree (IdealJoin) and ~4 ms/degree
        (AssocJoin: one triggered + one pipelined queue per degree)."""
        assert math.isclose(DEFAULT_COSTS.queue_create_triggered, 0.45e-3,
                            rel_tol=0.25)
        per_degree = (DEFAULT_COSTS.queue_create_triggered
                      + DEFAULT_COSTS.queue_create_pipelined)
        assert math.isclose(per_degree, 4e-3, rel_tol=0.25)


class TestScaled:
    def test_scales_all_work_costs(self):
        doubled = DEFAULT_COSTS.scaled(2.0)
        assert doubled.tuple_pair == 2 * DEFAULT_COSTS.tuple_pair
        assert doubled.thread_create == 2 * DEFAULT_COSTS.thread_create
        assert doubled.remote_line == 2 * DEFAULT_COSTS.remote_line

    def test_preserves_structure(self):
        doubled = DEFAULT_COSTS.scaled(2.0)
        assert doubled.line_bytes == DEFAULT_COSTS.line_bytes
        assert doubled.context_switch_tax == DEFAULT_COSTS.context_switch_tax

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(MachineError):
            DEFAULT_COSTS.scaled(0.0)
