"""Validating the analytical model against the engine.

Run:  python examples/model_validation.py

The paper's Section 4.1 analysis predicts execution-time bands from
three numbers per operator (activation count, mean cost, max cost).
This example sweeps thread counts and skews for both plan shapes and
prints the predicted [lower .. worst] band next to the measured
response — the same model-vs-measurement comparison Figures 12/13
make, but as a table you can re-run with your own parameters.
"""

from repro import (
    ExecutionOptions,
    Executor,
    Machine,
    QuerySchedule,
    assoc_join_plan,
    ideal_join_plan,
)
from repro.analysis.predictor import predict
from repro.bench.repeat import repeat
from repro.bench.workloads import make_join_database

MACHINE = Machine.uniform(processors=16)
CARD_A, CARD_B, DEGREE = 20_000, 2_000, 50


def validate(label, plan, threads, strategy):
    schedule = QuerySchedule.for_plan(plan, threads, strategy=strategy)
    band = predict(plan, schedule, MACHINE)
    measurement = repeat(
        lambda seed: Executor(MACHINE, ExecutionOptions(seed=seed))
        .execute(plan, schedule).response_time,
        repetitions=3)
    inside = band.lower_bound * 0.95 <= measurement.mean <= band.worst_time * 1.10
    print(f"  {label:<28} [{band.lower_bound:7.2f} .. {band.worst_time:7.2f}]"
          f"   measured {measurement.mean:7.2f} ± {measurement.std:.3f}"
          f"   {'inside' if inside else 'OUTSIDE'}")


def main() -> None:
    print(f"Predicted band vs measured response "
          f"(|A|={CARD_A}, |B'|={CARD_B}, degree={DEGREE})\n")
    for theta in (0.0, 1.0):
        database = make_join_database(CARD_A, CARD_B, DEGREE, theta)
        ideal = ideal_join_plan(database.entry_a, database.entry_b,
                                "key", "key")
        assoc = assoc_join_plan(database.entry_a, database.entry_b,
                                "key", "key")
        print(f"Zipf = {theta:g}:")
        for threads in (4, 10):
            validate(f"IdealJoin LPT, {threads} threads", ideal, threads,
                     "lpt")
            validate(f"IdealJoin Random, {threads} threads", ideal, threads,
                     "random")
            validate(f"AssocJoin, {threads} threads", assoc, threads,
                     "random")
        print()
    print("The skewed LPT IdealJoin sits on its band's lower edge: the")
    print("response is exactly start-up + Pmax, the longest activation —")
    print("equation (2)'s second phase with nothing left to overlap.")


if __name__ == "__main__":
    main()
