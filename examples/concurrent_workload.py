"""Concurrent workloads: several queries sharing one simulated machine.

Run:  python examples/concurrent_workload.py

Opens a :class:`~repro.Session`, submits four joins (two arriving
immediately, two a little later), and lets the workload engine admit
them, split the machine's threads across them by complexity, and
re-grant threads to the survivors as each query completes.  The
timeline printed at the end is the admission/grant/finish event stream
straight off the workload bus.
"""

from repro import DBS3, Session, WorkloadOptions, generate_wisconsin


def main() -> None:
    db = DBS3(processors=32)
    print("Loading Wisconsin relations (A: 30,000 tuples, B: 3,000)...")
    db.create_table(generate_wisconsin("A", 30_000, seed=1), "unique1",
                    degree=60)
    db.create_table(generate_wisconsin("B", 3_000, seed=2), "unique1",
                    degree=60)

    join = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"
    filtered = ("SELECT A.unique1, B.unique2 FROM A JOIN B "
                "ON A.unique1 = B.unique1 WHERE B.two = 0")

    print("\n-- Serial reference (back-to-back, one query at a time) -------")
    serial = sum(db.query(sql).response_time
                 for sql in (join, filtered, join, filtered))
    print(f"back-to-back total: {serial:.3f}s")

    print("\n-- The same four queries through one Session ------------------")
    session: Session = db.session(WorkloadOptions(max_concurrent=3))
    handles = [
        session.submit(join, tag="join-0"),
        session.submit(filtered, tag="filter-0"),
        session.submit(join, at=0.2, tag="join-1"),
        session.submit(filtered, at=0.4, tag="filter-1"),
    ]
    for handle in handles:
        result = handle.result()          # drives the whole workload once
        print(f"  {handle.tag:<10} rows={result.cardinality:<6} "
              f"response={result.response_time:.3f}s "
              f"threads={result.execution.total_threads}")

    workload = session.result
    print(f"\nmakespan: {workload.makespan:.3f}s "
          f"(vs {serial:.3f}s back-to-back, "
          f"{serial / workload.makespan:.2f}x)")
    print(f"throughput: {workload.throughput:.2f} queries/s, "
          f"mean response: {workload.mean_response_time:.3f}s")

    print("\n-- Workload timeline (admissions, thread grants, finishes) ----")
    for event in workload.bus.events:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
        print(f"  t={event.t:7.3f}  {event.kind:<13} "
              f"{event.operation or '':<9} {detail}")


if __name__ == "__main__":
    main()
