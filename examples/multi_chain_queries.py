"""Multi-chain queries: three-way joins and grouped aggregation.

Run:  python examples/multi_chain_queries.py

Two capabilities beyond the paper's two-plan evaluation:

* a three-way join executed as two chains with a materialized,
  hash-partitioned intermediate (Figure 5's multi-subquery execution);
* pipelined grouped aggregation (COUNT/SUM/MIN/MAX/AVG with GROUP BY),
  where each instance folds its hash bucket of groups and emits them
  when the pipeline closes.
"""

from repro import (
    DBS3,
    AdaptiveScheduler,
    Catalog,
    Executor,
    Machine,
    PartitioningSpec,
    Relation,
    Schema,
    two_phase_join_plan,
)
from repro.bench.workloads import make_join_database, skewed_fragments


def three_way_join() -> None:
    print("-- Three-way join (two chains, materialized intermediate) -----")
    machine = Machine.uniform(processors=16)
    catalog = Catalog()
    database = make_join_database(20_000, 2_000, degree=40, theta=0.0,
                                  catalog=catalog)
    relation_c, fragments_c = skewed_fragments("C", 5_000, 16, 0.0)
    entry_c = catalog.register_fragments(relation_c,
                                         PartitioningSpec.on("key", 16),
                                         fragments_c)

    plan = two_phase_join_plan(database.entry_a, database.entry_b,
                               "key", "key", entry_c,
                               intermediate_key="key", second_key="key")
    print("chains:")
    for chain in plan.chains():
        print(f"  {chain.name}: {' -> '.join(chain.node_names())}")

    schedule = AdaptiveScheduler(machine).schedule(plan, 12)
    execution = Executor(machine).execute(plan, schedule)
    store = execution.operation("store1")
    join2 = execution.operation("join2")
    print(f"chain 1 materializes {store.activations} intermediate tuples "
          f"into {store.instances} fragments (co-partitioned with C);")
    print(f"chain 2 starts at t={join2.started_at:.2f}s "
          f"(after the store finishes at {store.finished_at:.2f}s)")
    print(f"result: {execution.result_cardinality} rows "
          f"in {execution.response_time:.2f}s virtual time\n")


def grouped_aggregation() -> None:
    print("-- Grouped aggregation through SQL ------------------------------")
    db = DBS3(processors=16)
    schema = Schema.of_ints("key", "region", "amount")
    rows = [(i, i % 6, (i * 37) % 1000) for i in range(30_000)]
    db.create_table(Relation("Sales", schema, rows), "key", 30)

    sql = ("SELECT region, COUNT(*), SUM(amount), AVG(amount) "
           "FROM Sales WHERE amount >= 100 GROUP BY region")
    print(db.explain(sql, threads=8))
    result = db.query(sql, threads=8)
    print(f"{'region':>7}  {'count':>6}  {'sum':>9}  {'avg':>8}")
    for region, count, total, avg in sorted(result.rows):
        print(f"{region:>7}  {count:>6}  {total:>9.0f}  {avg:>8.2f}")
    print(f"response: {result.response_time:.2f}s virtual time")
    aggregate = result.execution.operation("aggregate")
    print(f"aggregate instances: {aggregate.instances}, "
          f"tuples folded: {aggregate.activations}")


def main() -> None:
    three_way_join()
    grouped_aggregation()


if __name__ == "__main__":
    main()
