"""Skew handling: Random vs LPT vs static binding, and why degree helps.

Run:  python examples/skew_handling.py

Reproduces the paper's Section 5.4 story at a laptop-friendly size:
a triggered IdealJoin over a Zipf-skewed relation is executed

* with the classic static one-thread-per-instance binding (baseline),
* with DBS3's shared queues + Random consumption,
* with DBS3's shared queues + LPT consumption,
* and finally at a much higher degree of partitioning,

showing response time and the skew overhead ``v = T/Tideal - 1``.
"""

from repro import (
    ExecutionOptions,
    Executor,
    Machine,
    ObservabilityOptions,
    QuerySchedule,
    StaticScheduler,
    ideal_join_plan,
)
from repro.bench.workloads import make_join_database

CARD_A, CARD_B = 50_000, 5_000
THREADS = 10
THETA = 0.8


def run_case(label, plan, schedule, executor, ideal):
    execution = executor.execute(plan, schedule)
    v = execution.response_time / ideal - 1
    print(f"  {label:<38} {execution.response_time:8.2f}s   v = {v:+.2f}")
    return execution


def main() -> None:
    machine = Machine.uniform(processors=16)
    executor = Executor(machine)

    print(f"IdealJoin, |A|={CARD_A}, |B'|={CARD_B}, Zipf={THETA}, "
          f"{THREADS} threads\n")

    for degree in (20, 400):
        database = make_join_database(CARD_A, CARD_B, degree, THETA)
        plan = ideal_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
        probe = executor.execute(plan, QuerySchedule.for_plan(plan, THREADS))
        ideal = (probe.startup_time
                 + probe.operation("join").profile().ideal_time(THREADS))
        skew = database.entry_a.statistics.skew_ratio
        print(f"degree of partitioning = {degree} "
              f"(largest fragment {skew:.1f}x the mean):")
        run_case("static binding (1 thread/instance)", plan,
                 StaticScheduler(machine).schedule(plan), executor, ideal)
        run_case("DBS3 shared queues, Random", plan,
                 QuerySchedule.for_plan(plan, THREADS, strategy="random"),
                 executor, ideal)
        run_case("DBS3 shared queues, LPT", plan,
                 QuerySchedule.for_plan(plan, THREADS, strategy="lpt"),
                 executor, ideal)
        print()

    print("Takeaways (matching the paper):")
    print(" * static binding is at the mercy of the largest fragment;")
    print(" * shared queues balance; LPT schedules the heavy fragments first;")
    print(" * raising the degree of partitioning shrinks the unit of work,")
    print("   making even a heavily skewed join nearly skew-insensitive.")

    print("\nThe straggler, made visible (degree 20, LPT, traced):")
    database = make_join_database(CARD_A // 5, CARD_B // 5, 20, 1.0)
    plan = ideal_join_plan(database.entry_a, database.entry_b, "key", "key")
    traced = Executor(machine, ExecutionOptions(observability=ObservabilityOptions(trace=True))).execute(
        plan, QuerySchedule.for_plan(plan, THREADS, strategy="lpt"))
    print(traced.trace.gantt(width=70))


if __name__ == "__main__":
    main()
