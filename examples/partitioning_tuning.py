"""Tuning the degree of partitioning (the Section 5.6 trade-off).

Run:  python examples/partitioning_tuning.py

Sweeps the degree of partitioning for a fixed thread count and shows
the two opposing forces: smaller fragments mean cheaper activations
and better balance, but every fragment adds queue-creation overhead.
The sweet spot depends on the join algorithm and the skew.
"""

from repro import Machine
from repro.bench.runners import run_assoc_join, run_ideal_join
from repro.bench.workloads import make_join_database
from repro.lera.operators import JOIN_NESTED_LOOP, JOIN_TEMP_INDEX

CARD_A, CARD_B = 50_000, 5_000
THREADS = 10
DEGREES = (20, 50, 100, 200, 400, 800)
MACHINE = Machine.uniform(processors=16)


def sweep(theta: float, algorithm: str) -> None:
    print(f"\nZipf = {theta:g}, algorithm = {algorithm}")
    print(f"  {'degree':>6}  {'IdealJoin':>10}  {'AssocJoin':>10}  "
          f"{'startup':>8}")
    best = None
    for degree in DEGREES:
        database = make_join_database(CARD_A, CARD_B, degree, theta)
        ideal = run_ideal_join(database, THREADS, strategy="lpt",
                               algorithm=algorithm, machine=MACHINE)
        assoc = run_assoc_join(database, THREADS, algorithm=algorithm,
                               machine=MACHINE)
        print(f"  {degree:>6}  {ideal.response_time:>9.2f}s  "
              f"{assoc.response_time:>9.2f}s  {ideal.startup_time:>7.2f}s")
        if best is None or ideal.response_time < best[1]:
            best = (degree, ideal.response_time)
    print(f"  -> best IdealJoin degree here: {best[0]} "
          f"({best[1]:.2f}s)")


def main() -> None:
    print(f"Degree-of-partitioning sweep: |A|={CARD_A}, |B'|={CARD_B}, "
          f"{THREADS} threads")
    print("Note: the degree of partitioning is decoupled from the degree")
    print("of parallelism — the thread count stays fixed throughout.")

    # Nested loop: work shrinks as 1/degree, so high degrees win big.
    sweep(theta=0.0, algorithm=JOIN_NESTED_LOOP)
    # Temp index: only the log factor shrinks; overhead matters sooner.
    sweep(theta=0.0, algorithm=JOIN_TEMP_INDEX)
    # Skewed data: the degree is also the skew remedy.
    sweep(theta=0.8, algorithm=JOIN_TEMP_INDEX)


if __name__ == "__main__":
    main()
