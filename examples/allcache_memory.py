"""The KSR1 Allcache memory model (Figures 7-9 of the paper).

Run:  python examples/allcache_memory.py

Runs the same parallel selection with data pre-cached locally versus
starting in remote caches, on the simulated KSR1 (physically
distributed, virtually shared memory, remote line access ~6x local),
and contrasts with a uniform (Encore-style) shared-memory machine.
"""

from repro import (
    Catalog,
    ExecutionOptions,
    Executor,
    Machine,
    QuerySchedule,
    attribute_predicate,
    selection_plan,
)
from repro.bench.workloads import make_selection_table
from repro.engine.executor import PLACEMENT_COLD, PLACEMENT_WARM


def main() -> None:
    catalog = Catalog(disk_count=8)
    entry = make_selection_table(cardinality=50_000, degree=100,
                                 catalog=catalog)
    predicate = attribute_predicate(entry.relation.schema, "unique2", "<",
                                    500, selectivity=0.01)
    plan = selection_plan(entry, predicate)

    print("Parallel selection over a 50K-tuple Wisconsin relation")
    print(f"{'threads':>8}  {'Tl local':>9}  {'Tr remote':>9}  "
          f"{'Tr-Tl':>8}  {'penalty':>8}")
    for threads in (5, 10, 20, 30):
        schedule = QuerySchedule.for_plan(plan, threads)
        times = {}
        for placement in (PLACEMENT_WARM, PLACEMENT_COLD):
            machine = Machine.ksr1(processors=32)
            executor = Executor(machine,
                                ExecutionOptions(placement=placement))
            times[placement] = executor.execute(plan, schedule)
        tl = times[PLACEMENT_WARM].response_time
        tr = times[PLACEMENT_COLD].response_time
        print(f"{threads:>8}  {tl:>8.3f}s  {tr:>8.3f}s  "
              f"{tr - tl:>7.3f}s  {(tr - tl) / tr:>7.1%}")

    print("\nThe penalty is a few percent of total time and shrinks with")
    print("the thread count: line shipping is parallelized, exactly the")
    print("paper's Figure 9 behaviour.")

    print("\nOn a uniform shared-memory machine placement is irrelevant:")
    machine = Machine.uniform(processors=32)
    executor = Executor(machine)
    t = executor.execute(plan, QuerySchedule.for_plan(plan, 10)).response_time
    print(f"  uniform machine, 10 threads: {t:.3f}s regardless of placement")

    cold = times[PLACEMENT_COLD].operations["filter"]
    print(f"\nAllcache counters for the last remote run: "
          f"{cold.memory_penalty:.3f}s of virtual time spent shipping lines.")


if __name__ == "__main__":
    main()
