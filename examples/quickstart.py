"""Quickstart: create a DBS3 instance, load data, run SQL.

Run:  python examples/quickstart.py

Creates two Wisconsin benchmark relations, hash partitioned into 50
fragments each, and runs a selection and both join shapes through the
full pipeline (SQL -> logical plan -> Lera-par plan -> adaptive
schedule -> virtual-time parallel execution).
"""

from repro import DBS3, generate_wisconsin


def main() -> None:
    # A 16-processor shared-memory machine (pass machine=Machine.ksr1()
    # for the Allcache memory model).
    db = DBS3(processors=16)

    print("Loading Wisconsin relations (A: 20,000 tuples, B: 2,000)...")
    db.create_table(generate_wisconsin("A", 20_000, seed=1), "unique1",
                    degree=50)
    db.create_table(generate_wisconsin("B", 2_000, seed=2), "unique1",
                    degree=50)

    print("\n-- Selection ------------------------------------------------")
    sql = "SELECT unique1, unique2 FROM A WHERE unique1 < 100"
    result = db.query(sql)
    print(db.explain(sql))
    print(f"rows: {result.cardinality}, "
          f"virtual response time: {result.response_time:.3f}s, "
          f"threads: {result.execution.total_threads}")

    print("\n-- IdealJoin (co-partitioned operands) ------------------------")
    sql = "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"
    result = db.query(sql, threads=8)
    print(db.explain(sql, threads=8))
    join = result.execution.operation("join")
    print(f"rows: {result.cardinality}, "
          f"response: {result.response_time:.3f}s, "
          f"pool utilization: {join.utilization:.0%}")

    print("\n-- Filter-join pipeline (Figure 1 of the paper) ---------------")
    sql = ("SELECT A.unique1, B.unique2 FROM A JOIN B "
           "ON A.unique1 = B.unique1 WHERE B.two = 0")
    result = db.query(sql, threads=8)
    print(db.explain(sql, threads=8))
    print(f"rows: {result.cardinality}, "
          f"response: {result.response_time:.3f}s")
    print("first rows:", result.head(3))

    print("\n-- Letting the scheduler pick the degree of parallelism -------")
    for sql in ("SELECT * FROM A WHERE unique2 = 7",          # tiny query
                "SELECT * FROM A JOIN B ON A.unique1 = B.unique1"):
        result = db.query(sql)
        print(f"{sql!r}\n  -> {result.execution.total_threads} threads, "
              f"{result.response_time:.3f}s")


if __name__ == "__main__":
    main()
