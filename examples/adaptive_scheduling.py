"""The four-step adaptive scheduler on a multi-chain query.

Run:  python examples/adaptive_scheduling.py

Builds a Figure-5-style plan — two producer chains materializing into
a final join chain — and shows how the scheduler (1) sizes the thread
budget from estimated complexity, (2) splits it across the chain tree,
(3) splits each chain's share across its operators, and (4) picks
Random or LPT per operator from fragment statistics.
"""

from repro import (
    AdaptiveScheduler,
    Catalog,
    Executor,
    Machine,
    PartitioningSpec,
    assoc_join_plan,
    attribute_predicate,
    generate_wisconsin,
    selection_plan,
)
from repro.bench.workloads import make_join_database
from repro.lera.plans import materialized
from repro.scheduler.complexity import query_complexity


def main() -> None:
    machine = Machine.uniform(processors=32)
    scheduler = AdaptiveScheduler(machine)
    catalog = Catalog(disk_count=8)

    # A skewed join database plus an independent Wisconsin relation.
    database = make_join_database(30_000, 3_000, degree=60, theta=0.9,
                                  catalog=catalog)
    wisconsin = catalog.register(generate_wisconsin("W", 10_000, seed=4),
                                 PartitioningSpec.on("unique1", 60))

    # Chain 1: filter W (materialized); chain 2: AssocJoin A with B'.
    predicate = attribute_predicate(wisconsin.relation.schema,
                                    "tenPercent", "=", 0, selectivity=0.1)
    producer = selection_plan(wisconsin, predicate, node_name="w_filter")
    consumer = assoc_join_plan(database.entry_a, database.entry_b,
                               "key", "key")
    plan = materialized(producer, consumer, "w_filter", "transmit")

    print("Plan chains (the paper's subqueries):")
    for chain in plan.chains():
        print(f"  {chain.name}: {' -> '.join(chain.node_names())}")

    work = query_complexity(plan, machine.costs)
    print(f"\nEstimated sequential complexity: {work:.1f}s")

    print("\nStep 1 — thread budget chosen from complexity:")
    for label, threads in (("auto", None), ("forced 8", 8)):
        schedule = scheduler.schedule(plan, threads)
        total = sum(s.threads for s in schedule.operations.values())
        print(f"  [{label}] query runs with {total} threads:")
        for node in plan.nodes:
            op = schedule.of(node.name)
            print(f"    {node.name:<10} {node.trigger_mode:<9} "
                  f"x{node.instances:<4} -> {op.threads:>2} threads, "
                  f"{op.strategy}")

    print("\nExecuting with the automatic schedule...")
    schedule = scheduler.schedule(plan)
    execution = Executor(machine).execute(plan, schedule)
    print(f"  response time: {execution.response_time:.2f}s "
          f"(start-up {execution.startup_time:.2f}s)")
    for name, op in execution.operations.items():
        print(f"  {name:<10} {op.activations:>6} activations, "
              f"utilization {op.utilization:.0%}")
    print(f"  result rows: {execution.result_cardinality} "
          f"(filter output + join output)")
    print("\nNote the skewed triggered transmit got LPT while the uniform")
    print("filter kept Random — step 4 reads the fragment statistics.")


if __name__ == "__main__":
    main()
